"""The CTA's logical clock and in-memory message log (§4.2.3).

Every uplink control message is stamped with a monotone logical clock
and appended here before being forwarded to the primary CPF.  On
procedure completion the primary checkpoints state to the backups along
with the last message's clock; backups ACK to the CTA; once all backups
have ACKed a procedure its messages are pruned.  The byte accounting
(entry payload = the message's real encoded size under the active codec,
plus fixed bookkeeping overhead) feeds Fig. 17 (max log size vs active
users).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..sim.monitor import TimeWeighted

__all__ = ["LogicalClock", "LogEntry", "ProcedureRecord", "MessageLog"]

#: fixed per-entry bookkeeping: clock, UE key, timestamps, map overhead.
_ENTRY_OVERHEAD_BYTES = 64


class LogicalClock:
    """Monotone per-CTA counter used to order and identify messages."""

    def __init__(self, start: int = 0):
        self._value = start

    @property
    def value(self) -> int:
        return self._value

    def tick(self) -> int:
        self._value += 1
        return self._value


@dataclass
class LogEntry:
    """One logged control message."""

    clock: int
    ue_id: str
    msg_name: str
    size_bytes: int
    logged_at: float

    @property
    def footprint(self) -> int:
        return self.size_bytes + _ENTRY_OVERHEAD_BYTES


@dataclass
class ProcedureRecord:
    """ACK bookkeeping for one completed procedure of one UE (§4.2.3 #4)."""

    ue_id: str
    last_clock: int
    replicas: Tuple[str, ...]
    completed_at: float
    acked: Set[str] = field(default_factory=set)

    @property
    def fully_acked(self) -> bool:
        return set(self.replicas) <= self.acked

    def missing(self) -> List[str]:
        return sorted(set(self.replicas) - self.acked)


class MessageLog:
    """Per-UE ordered message log + per-procedure ACK tracking."""

    def __init__(self, sim_now, enabled: bool = True):
        self._now = sim_now
        self.enabled = enabled
        self._entries: Dict[str, List[LogEntry]] = {}
        self._procedures: "OrderedDict[Tuple[str, int], ProcedureRecord]" = OrderedDict()
        self.size_probe = TimeWeighted(sim_now)
        self._size_bytes = 0
        self.appended = 0
        self.pruned = 0

    # -- appending ----------------------------------------------------------

    def append(self, clock: int, ue_id: str, msg_name: str, size_bytes: int) -> None:
        if not self.enabled:
            return
        entry = LogEntry(clock, ue_id, msg_name, size_bytes, self._now())
        self._entries.setdefault(ue_id, []).append(entry)
        self._size_bytes += entry.footprint
        self.size_probe.set(self._size_bytes)
        self.appended += 1

    # -- procedure boundaries -------------------------------------------------

    def procedure_completed(
        self, ue_id: str, last_clock: int, replicas: Iterable[str]
    ) -> None:
        """Record a checkpoint boundary and the replicas expected to ACK."""
        if not self.enabled:
            return
        replicas = tuple(replicas)
        record = ProcedureRecord(ue_id, last_clock, replicas, self._now())
        self._procedures[(ue_id, last_clock)] = record
        if not replicas:  # nothing to wait for; prune immediately
            self._prune_through(ue_id, last_clock)
            self._procedures.pop((ue_id, last_clock), None)

    def ack(self, ue_id: str, last_clock: int, replica: str) -> None:
        """A replica confirmed it holds state through ``last_clock``."""
        record = self._procedures.get((ue_id, last_clock))
        if record is None:
            return  # already pruned (late duplicate ACK)
        record.acked.add(replica)
        if record.fully_acked:
            self._prune_through(ue_id, last_clock)
            del self._procedures[(ue_id, last_clock)]

    # -- queries ----------------------------------------------------------------

    def entries_after(self, ue_id: str, clock: int) -> List[LogEntry]:
        """Messages for ``ue_id`` newer than ``clock`` (the replay set)."""
        return [e for e in self._entries.get(ue_id, ()) if e.clock > clock]

    def pending_records(self) -> List[ProcedureRecord]:
        return list(self._procedures.values())

    def stale_records(self, older_than: float) -> List[ProcedureRecord]:
        """Procedures whose ACKs are missing past the timeout (§4.2.4)."""
        return [
            r
            for r in self._procedures.values()
            if not r.fully_acked and r.completed_at <= older_than
        ]

    def unacked_for(self, ue_id: str) -> List[ProcedureRecord]:
        return [
            r
            for (uid, _clock), r in self._procedures.items()
            if uid == ue_id and not r.fully_acked
        ]

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    @property
    def max_size_bytes(self) -> float:
        return self.size_probe.max_value

    def entry_count(self) -> int:
        return sum(len(v) for v in self._entries.values())

    # -- pruning -----------------------------------------------------------------

    def _prune_through(self, ue_id: str, clock: int) -> None:
        entries = self._entries.get(ue_id)
        if not entries:
            return
        kept, dropped = [], 0
        for entry in entries:
            if entry.clock <= clock:
                self._size_bytes -= entry.footprint
                dropped += 1
            else:
                kept.append(entry)
        if kept:
            self._entries[ue_id] = kept
        else:
            self._entries.pop(ue_id, None)
        if dropped:
            self.pruned += dropped
            self.size_probe.set(self._size_bytes)

    def drop_procedure(self, ue_id: str, last_clock: int) -> None:
        """§4.2.4(1d): after marking replicas outdated, delete the messages."""
        self._prune_through(ue_id, last_clock)
        self._procedures.pop((ue_id, last_clock), None)
