"""The orchestration policy DSL (``--policy`` JSON).

An :class:`OrchPolicy` is the complete, JSON-round-trippable input of
the closed-loop controller: tick cadence plus three independently
enabled behaviours —

* **autoscale** — hysteresis on per-CPF outstanding load
  (``queue + busy`` across a region's up CPFs, read from the epoch
  heartbeat's ``load`` table): ``scale_out_queue`` / ``scale_in_queue``
  thresholds must hold for ``scale_out_ticks`` / ``scale_in_ticks``
  consecutive ticks, with a per-region ``cooldown_ticks`` dead time
  after any action and ``min_cpfs``/``max_cpfs`` pool bounds;
* **rolling upgrade** — starting at ``upgrade_start_frac`` of the run,
  every CPF under ``upgrade_prefix`` (``None`` = the whole city) is
  drained (ringed out, state repaired away over ``upgrade_drain_s``),
  then restarted empty and ringed back in, one CPF every
  ``upgrade_stagger_s``;
* **auto-heal** — a CPF observed down for ``heal_after_ticks``
  consecutive ticks gets its orphaned primaries promoted onto
  up-to-date backups and (``heal_recover``) the node restarted,
  racing the paper's reactive two-level recovery.

``None`` disables a behaviour; a policy with everything disabled is a
*no-op policy* (``mutating`` is False): the controller observes every
tick but never acts, which is the controller-overhead benchmark
configuration and is guaranteed not to perturb the run's digest.

Times: ``tick_s``, ``upgrade_drain_s`` and ``upgrade_stagger_s`` are
simulated seconds; ``upgrade_start_frac`` is a fraction of the run
duration so ``--duration`` scales the phase structure like scenario
fault schedules do.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional

__all__ = ["OrchPolicy"]


@dataclass(frozen=True)
class OrchPolicy:
    """One deterministic controller configuration (see module doc)."""

    #: controller cadence in simulated seconds (epoch-aligned: sharded
    #: runs tick at the first lockstep boundary >= each multiple).
    tick_s: float = 0.05

    # -- autoscale ---------------------------------------------------------
    scale_out_queue: Optional[float] = None
    scale_in_queue: Optional[float] = None
    scale_out_ticks: int = 2
    scale_in_ticks: int = 4
    cooldown_ticks: int = 4
    min_cpfs: int = 1
    max_cpfs: int = 8

    # -- rolling upgrade ---------------------------------------------------
    upgrade_start_frac: Optional[float] = None
    upgrade_drain_s: float = 0.1
    upgrade_stagger_s: float = 0.1
    upgrade_prefix: Optional[str] = None

    # -- auto-heal ---------------------------------------------------------
    heal_after_ticks: Optional[int] = None
    heal_recover: bool = True

    def __post_init__(self):
        if self.tick_s <= 0.0:
            raise ValueError("tick_s must be > 0, got %r" % (self.tick_s,))
        for name in ("scale_out_ticks", "scale_in_ticks", "heal_after_ticks"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError("%s must be >= 1, got %r" % (name, value))
        if self.cooldown_ticks < 0:
            raise ValueError("cooldown_ticks must be >= 0")
        if self.min_cpfs < 1:
            raise ValueError("min_cpfs must be >= 1 (a region keeps a CPF)")
        if self.max_cpfs < self.min_cpfs:
            raise ValueError("max_cpfs must be >= min_cpfs")
        for name in ("scale_out_queue", "scale_in_queue"):
            value = getattr(self, name)
            if value is not None and value < 0.0:
                raise ValueError("%s must be >= 0, got %r" % (name, value))
        if self.upgrade_start_frac is not None and not (
            0.0 <= self.upgrade_start_frac <= 1.0
        ):
            raise ValueError("upgrade_start_frac must be in [0, 1]")
        if self.upgrade_drain_s < 0.0 or self.upgrade_stagger_s < 0.0:
            raise ValueError("upgrade drain/stagger must be >= 0")

    # -- derived -----------------------------------------------------------

    @property
    def autoscale(self) -> bool:
        return self.scale_out_queue is not None or self.scale_in_queue is not None

    @property
    def upgrading(self) -> bool:
        return self.upgrade_start_frac is not None

    @property
    def healing(self) -> bool:
        return self.heal_after_ticks is not None

    @property
    def mutating(self) -> bool:
        """Whether this policy can ever change the deployment."""
        return self.autoscale or self.upgrading or self.healing

    # -- JSON round trip ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OrchPolicy":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                "unknown policy keys: %s (have: %s)"
                % (", ".join(unknown), ", ".join(sorted(known)))
            )
        return cls(**data)
