"""The deterministic closed-loop controller (ROADMAP item 1).

:class:`Orchestrator` is a pure sim-clock state machine: it consumes
the epoch-aligned heartbeat feed (per-shard ``health_row`` dicts, whose
``load`` table the engines populate when a policy is active) and emits
lifecycle *actions* — plain picklable dicts the engines apply at epoch
boundaries:

========================  ====================================================
``scale_out``             ring a brand-new CPF into ``region`` (name chosen
                          here so every shard agrees), then repair-fetch the
                          keys that now hash to it
``scale_in``              ring ``cpf`` out, drain its keys via repair
                          fetches, then decommission the node
``upgrade_begin``         ring ``cpf`` out and drain it (rolling upgrade
                          phase 1)
``upgrade_replace``       restart ``cpf`` empty, ring it back in, repair-
                          fetch its keys back (phase 2)
``heal``                  promote orphaned primaries of a crashed ``cpf``
                          onto up-to-date backups; optionally restart it
========================  ====================================================

Where the controller runs differs by topology — in-process (one engine,
ticks are sim timeouts) or at the shard coordinator (ticks piggyback on
lockstep epochs; actions ship inside the next step message) — but its
inputs are identical either way: (policy, duration, a deterministic
health sequence).  Its outputs are therefore bit-reproducible, and the
append-only ``log`` is the pinned action-log witness.

New-CPF naming (the mid-run-joiner contract): orchestrator-added CPFs
are named ``cpf-<tile>-<k>`` with ``k`` one past the region's all-time
high-water index — never a reused index, so remove + re-add cannot
collide, and the standard ``region_of``-style parse (``parts[1]``)
resolves the joiner for the FaultInjector, geo placement, and shard
ownership exactly like a seed CPF.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .policy import OrchPolicy

__all__ = ["Orchestrator", "cpf_index"]


def cpf_index(name: str) -> int:
    """Numeric suffix of ``cpf-<tile>-<k>`` (-1 if non-standard)."""
    tail = name.rsplit("-", 1)[-1]
    try:
        return int(tail)
    except ValueError:
        return -1


class Orchestrator:
    """Policy-driven action source over the heartbeat feed."""

    def __init__(self, policy: OrchPolicy, duration: float):
        self.policy = policy
        self.duration = duration
        #: append-only action log — every entry is the emitted action
        #: plus the (epoch, t) it was decided at; the golden witness.
        self.log: List[Dict[str, Any]] = []
        self.ticks = 0
        self.heartbeats_seen = 0
        self.last_heartbeat: Optional[Dict[str, Any]] = None
        # hysteresis state, all keyed by region geohash
        self._hi: Dict[str, int] = {}
        self._lo: Dict[str, int] = {}
        self._cooldown: Dict[str, int] = {}
        self._hwm: Dict[str, int] = {}
        # rolling-upgrade schedule (built on the first tick past start)
        self._upgrade_plan: Optional[List[Dict[str, Any]]] = None
        self._upgrading: set = set()
        # auto-heal latches, keyed by CPF name
        self._down_since: Dict[str, int] = {}
        self._healed: set = set()

    # -- heartbeat subscriber (programmatic feed) --------------------------

    def attach_stream(self, stream) -> None:
        """Consume a :class:`~repro.obs.stream.HeartbeatStream` live."""
        stream.subscribe(self._on_row)

    def _on_row(self, row: Dict[str, Any]) -> None:
        if row.get("type") == "heartbeat":
            self.heartbeats_seen += 1
            self.last_heartbeat = row

    # -- the tick ----------------------------------------------------------

    def observe(
        self, epoch: int, t: float, healths: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """One control tick: fold shard health, decide, log, return actions."""
        load: Dict[str, Dict[str, Any]] = {}
        for health in sorted(healths, key=lambda h: h.get("shard", 0)):
            for region, row in (health.get("load") or {}).items():
                load[region] = row
        actions: List[Dict[str, Any]] = []
        if self.policy.autoscale:
            self._autoscale(load, actions)
        if self.policy.upgrading:
            self._upgrade(t, load, actions)
        if self.policy.healing:
            self._heal(epoch, load, actions)
        self.ticks += 1
        for action in actions:
            self.log.append(dict(action, epoch=epoch, t=t))
        return actions

    # -- autoscale ---------------------------------------------------------

    def _note_hwm(self, region: str, members: Sequence[str]) -> int:
        hwm = self._hwm.get(region, -1)
        for name in members:
            idx = cpf_index(name)
            if idx > hwm:
                hwm = idx
        self._hwm[region] = hwm
        return hwm

    def _parent_members(self, load, region: str) -> int:
        parent = region[:-1]
        return sum(
            len(row.get("members", ()))
            for r, row in load.items()
            if r[:-1] == parent
        )

    def _autoscale(self, load, actions) -> None:
        p = self.policy
        for region in sorted(load):
            row = load[region]
            members = row.get("members", [])
            self._note_hwm(region, members)
            up = row.get("up", 0)
            per_cpf = (row.get("q", 0) / up) if up else float("inf")
            hi = lo = 0
            if p.scale_out_queue is not None and per_cpf >= p.scale_out_queue:
                hi = self._hi.get(region, 0) + 1
            if (
                p.scale_in_queue is not None
                and up == len(members)  # never shrink a degraded pool
                and per_cpf <= p.scale_in_queue
            ):
                lo = self._lo.get(region, 0) + 1
            self._hi[region], self._lo[region] = hi, lo
            cooldown = self._cooldown.get(region, 0)
            if cooldown > 0:
                self._cooldown[region] = cooldown - 1
                continue
            if hi >= p.scale_out_ticks and len(members) < p.max_cpfs:
                k = self._hwm[region] + 1
                self._hwm[region] = k
                actions.append(
                    {
                        "kind": "scale_out",
                        "region": region,
                        "cpf": "cpf-%s-%d" % (region, k),
                    }
                )
                self._cooldown[region] = p.cooldown_ticks
                self._hi[region] = 0
                continue
            if (
                lo >= p.scale_in_ticks
                and len(members) > max(1, p.min_cpfs)
                and self._parent_members(load, region) > 1
            ):
                victims = [m for m in members if m not in self._upgrading]
                if not victims:
                    continue
                victim = max(victims, key=lambda m: (cpf_index(m), m))
                actions.append(
                    {"kind": "scale_in", "region": region, "cpf": victim}
                )
                self._cooldown[region] = p.cooldown_ticks
                self._lo[region] = 0

    # -- rolling upgrade ---------------------------------------------------

    def _upgrade(self, t: float, load, actions) -> None:
        p = self.policy
        start = p.upgrade_start_frac * self.duration
        if t < start:
            return
        if self._upgrade_plan is None:
            targets = []
            for region in sorted(load):
                if p.upgrade_prefix is not None and not region.startswith(
                    p.upgrade_prefix
                ):
                    continue
                for name in sorted(
                    load[region].get("members", []),
                    key=lambda m: (cpf_index(m), m),
                ):
                    targets.append((region, name))
            self._upgrade_plan = [
                {
                    "region": region,
                    "cpf": name,
                    "begin": start + k * p.upgrade_stagger_s,
                    "phase": 0,
                }
                for k, (region, name) in enumerate(targets)
            ]
        for item in self._upgrade_plan:
            if item["phase"] == 0 and t >= item["begin"]:
                item["phase"] = 1
                self._upgrading.add(item["cpf"])
                actions.append(
                    {
                        "kind": "upgrade_begin",
                        "region": item["region"],
                        "cpf": item["cpf"],
                    }
                )
            if item["phase"] == 1 and t >= item["begin"] + p.upgrade_drain_s:
                item["phase"] = 2
                self._upgrading.discard(item["cpf"])
                actions.append(
                    {
                        "kind": "upgrade_replace",
                        "region": item["region"],
                        "cpf": item["cpf"],
                    }
                )

    def upgrade_done(self) -> bool:
        """Whether every planned upgrade reached the replace phase."""
        plan = self._upgrade_plan
        return plan is not None and all(item["phase"] == 2 for item in plan)

    # -- auto-heal ---------------------------------------------------------

    def _heal(self, epoch: int, load, actions) -> None:
        p = self.policy
        down_now = set()
        for region in sorted(load):
            for name in load[region].get("down", ()):
                down_now.add(name)
                if name in self._upgrading:
                    continue  # our own drain, not a crash
                first = self._down_since.setdefault(name, epoch)
                if name in self._healed:
                    continue
                if epoch - first + 1 >= p.heal_after_ticks:
                    self._healed.add(name)
                    actions.append(
                        {
                            "kind": "heal",
                            "region": region,
                            "cpf": name,
                            "recover": p.heal_recover,
                        }
                    )
        for name in list(self._down_since):
            if name not in down_now:
                del self._down_since[name]
                self._healed.discard(name)

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for entry in self.log:
            counts[entry["kind"]] = counts.get(entry["kind"], 0) + 1
        return {
            "ticks": self.ticks,
            "actions": len(self.log),
            "by_kind": counts,
            "heartbeats_seen": self.heartbeats_seen,
        }


# -- baseline comparison ----------------------------------------------------


def worst_attach_p99(result):
    """Worst-region attach p99 (ms) from a :class:`ScaleResult`.

    The autoscale acceptance metric: the controller must make the
    *slowest* region's attach tail better, not shift load around.
    Returns ``None`` when no region completed an attach.
    """
    worst = None
    for table in getattr(result, "region_pct_ms", {}).values():
        attach = table.get("attach")
        if not attach:
            continue
        p99 = attach.get("p99")
        if p99 is None:
            continue
        if worst is None or p99 > worst:
            worst = p99
    return worst


def orch_compare(orchestrated, baseline) -> Dict[str, Any]:
    """Compare an orchestrated run against its fixed-capacity twin.

    Both runs share spec, seed, and shard count; only ``orch_policy``
    differs.  The dict lands in the run ledger under ``orch.compare``.
    """
    orch_p99 = worst_attach_p99(orchestrated)
    base_p99 = worst_attach_p99(baseline)
    return {
        "metric": "attach_p99_ms_worst_region",
        "orch_attach_p99_ms": orch_p99,
        "baseline_attach_p99_ms": base_p99,
        "baseline_violations": baseline.violations,
        "baseline_digest": baseline.digest,
        "improved": (
            orch_p99 is not None
            and base_p99 is not None
            and orch_p99 < base_p99
        ),
    }
