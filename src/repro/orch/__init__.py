"""Closed-loop orchestration: day-2 operations on the sim clock.

``repro.orch`` turns the epoch-aligned heartbeat feed (``repro.obs``)
into lifecycle decisions — CPF scale-out/scale-in, rolling upgrades,
auto-heal — applied deterministically at epoch boundaries through the
deployment's existing choke points.  See DESIGN.md §15.
"""

from .controller import Orchestrator, cpf_index, orch_compare, worst_attach_p99
from .policy import OrchPolicy

__all__ = [
    "OrchPolicy",
    "Orchestrator",
    "cpf_index",
    "orch_compare",
    "worst_attach_p99",
]
