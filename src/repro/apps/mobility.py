"""Mobility application experiments (paper §6.6, Figs. 12-14).

A *subject UE* streams deadline-tagged sensor/pose packets uplink while
driving across base stations (Fig. 12's geometry), executing one or
several handovers, while a population of background users loads the
control plane.  Packets that arrive after their application deadline —
because the data path was stalled by a handover, a service request, or
failure recovery — are counted as missed, exactly like the paper's edge
application does.

Substitutions (per DESIGN.md): CARLA is replaced by the deadline-tagged
packet stream (the control-plane mechanism under test is identical);
the "active users" axis maps to background control procedures at
``bg_procedures_per_user_s`` per user, scaled to the simulated slice.
A constant ``radio_interruption_s`` models the radio-layer break every
handover incurs regardless of core design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.config import ControlPlaneConfig
from ..core.deployment import Deployment
from ..sim.core import Simulator
from ..sim.rng import RngRegistry
from .datapath import StallInterval, count_missed_deadlines, stalls_from_outcomes

__all__ = ["MobilityAppSpec", "MobilityResult", "run_mobility_experiment"]

#: testbed CPF count, for slice scaling (see experiments.harness).
_TESTBED_CPFS = 5


@dataclass
class MobilityAppSpec:
    """One mobility-application experiment configuration."""

    #: uplink sensor stream (paper: 1 kHz).
    packet_rate_hz: float = 1000.0
    #: application deadline (self-driving: 100 ms; VR: 16 ms).
    deadline_s: float = 0.100
    #: end-to-end latency when the path is up (edge app, one-way).
    base_latency_s: float = 0.004
    #: data-access interruption per handover that is *not* the core's
    #: doing (radio re-sync, RRC reconfiguration).  [37] reports control
    #: handovers costing up to 1.9 s of data access; the core-independent
    #: share is on the order of hundreds of ms, which is why the paper's
    #: Neutrino still misses deadlines during handovers.
    radio_interruption_s: float = 0.8
    #: how long the subject UE drives (scaled stand-in for 5 min @60 mph).
    drive_duration_s: float = 4.0
    #: handovers during the drive (1 = the paper's "single HO" scenario).
    handovers: int = 1
    #: background control procedures per active user per second.
    bg_procedures_per_user_s: float = 0.3
    regions: int = 2
    cpfs_per_region: int = 1
    seed: int = 7

    def validate(self) -> None:
        if self.packet_rate_hz <= 0 or self.deadline_s <= 0:
            raise ValueError("packet rate and deadline must be positive")
        if self.handovers < 0:
            raise ValueError("handovers must be non-negative")
        if self.drive_duration_s <= 0:
            raise ValueError("drive duration must be positive")


@dataclass
class MobilityResult:
    scheme: str
    active_users: float
    missed: int
    total: int
    handovers_executed: int
    stall_time_s: float

    @property
    def miss_fraction(self) -> float:
        return self.missed / self.total if self.total else 0.0


def run_mobility_experiment(
    config: ControlPlaneConfig,
    active_users: float,
    spec: Optional[MobilityAppSpec] = None,
) -> MobilityResult:
    """Drive the subject UE under background load; count missed packets."""
    spec = spec or MobilityAppSpec()
    spec.validate()

    sim = Simulator()
    rng = RngRegistry(spec.seed)
    dep = Deployment.build_grid(
        sim,
        config,
        cpfs_per_region=spec.cpfs_per_region,
        regions=spec.regions,
        rng=rng,
    )
    n_cpfs = spec.regions * spec.cpfs_per_region

    # Background control load: active users each issuing control
    # procedures.  Injected as per-message CPU jobs directly on each
    # CPF's processing core — the queueing effect on the subject's
    # procedures is identical to full background procedures at a
    # fraction of the simulation cost (documented in DESIGN.md §4).
    per_cpf_proc_rate = active_users * spec.bg_procedures_per_user_s / _TESTBED_CPFS
    msgs_per_proc = 3.0  # service-request-like background mix
    service = config.cost_model.message_service_time(config.codec, 8)

    def background(cpf, stream):
        rate = per_cpf_proc_rate * msgs_per_proc
        if rate <= 0:
            return
        while sim.now < spec.drive_duration_s:
            yield sim.timeout(stream.expovariate(rate))
            if cpf.up:
                cpf.server.submit(service)

    for i, cpf in enumerate(dep.cpfs.values()):
        sim.process(background(cpf, rng.stream("bg-%d" % i)), name="bg-%d" % i)

    # The subject UE ping-pongs between a region-0 and a region-1 BS.
    bs_names = sorted(dep.bss)
    region0 = dep.bss[bs_names[0]].region
    home = next(b for b in bs_names if dep.bss[b].region == region0)
    away = next(b for b in bs_names if dep.bss[b].region != region0)
    subject = dep.bootstrap_ue("subject-car", home)

    use_fast = config.proactive_georep
    ho_proc = "fast_handover" if use_fast else "handover"
    gap = spec.drive_duration_s / (spec.handovers + 1) if spec.handovers else 0.0

    def drive():
        for i in range(spec.handovers):
            yield sim.timeout(gap)
            target = away if subject.bs_name == home else home
            yield from subject.execute(ho_proc, target_bs=target)
        remaining = spec.drive_duration_s - sim.now
        if remaining > 0:
            yield sim.timeout(remaining)

    drive_proc = sim.process(drive(), name="drive")
    sim.run(until=spec.drive_duration_s + 1.0)

    subject_outcomes = [
        o
        for o in dep.outcomes
        if o.name in ("handover", "fast_handover", "re_attach")
        and o.started_at <= spec.drive_duration_s
    ]
    # Only the subject's own procedures stall its path; background UEs
    # use distinct procedure kinds only for themselves.  Filter by the
    # subject's executed procedures: it is the only UE doing handovers.
    stalls: List[StallInterval] = stalls_from_outcomes(subject_outcomes)
    stalls = [
        StallInterval(
            s.start, s.end + spec.radio_interruption_s, s.cause
        )
        for s in stalls
    ]
    missed, total = count_missed_deadlines(
        stalls,
        spec.drive_duration_s,
        spec.packet_rate_hz,
        spec.deadline_s,
        spec.base_latency_s,
    )
    return MobilityResult(
        scheme=config.name,
        active_users=active_users,
        missed=missed,
        total=total,
        handovers_executed=sum(
            1 for o in subject_outcomes if o.name in ("handover", "fast_handover")
        ),
        stall_time_s=sum(s.duration for s in stalls),
    )
