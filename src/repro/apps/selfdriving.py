"""Self-driving-car application (paper §6.6, Figs. 12-13).

A CARLA-substitute: the car streams sensor data uplink at 1 kHz to an
edge application that must act within a ~100 ms decision budget
(Lin et al., ASPLOS'18, cited as [55]).  Packets stuck behind a
control-plane stall miss that budget.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.config import ControlPlaneConfig
from .mobility import MobilityAppSpec, MobilityResult, run_mobility_experiment

__all__ = ["self_driving_spec", "run_self_driving"]

#: decision budget for an autonomous vehicle (order of 100 ms, §6.6).
SELF_DRIVING_DEADLINE_S = 0.100


def self_driving_spec(
    handovers: int = 1, **overrides
) -> MobilityAppSpec:
    """The Fig. 13 configuration (LHS: handovers=1; RHS: several)."""
    spec = MobilityAppSpec(
        packet_rate_hz=1000.0,
        deadline_s=SELF_DRIVING_DEADLINE_S,
        handovers=handovers,
    )
    return replace(spec, **overrides) if overrides else spec


def run_self_driving(
    config: ControlPlaneConfig,
    active_users: float,
    handovers: int = 1,
    spec: Optional[MobilityAppSpec] = None,
) -> MobilityResult:
    """Missed sensor deadlines for one drive under background load."""
    return run_mobility_experiment(
        config, active_users, spec or self_driving_spec(handovers)
    )
