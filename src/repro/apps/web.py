"""Page-load-time model (paper §6.6 and Fig. 3).

Per the paper: "Page load time is equal to (i) service request PCT plus
(ii) average page load time of the top 10 Alexa pages", with an MITM
proxy replaying pages locally to remove network variation.  Only the
control-plane term differs between schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.config import ControlPlaneConfig
from ..experiments.harness import RunSpec, run_pct_point

__all__ = ["WebAppSpec", "WebResult", "run_page_load"]


@dataclass
class WebAppSpec:
    """Browser-side constants (scheme-independent)."""

    #: average locally-replayed load time of the top-10 Alexa pages.
    page_fetch_s: float = 1.9
    run: Optional[RunSpec] = None

    def run_spec(self) -> RunSpec:
        return self.run or RunSpec(
            procedure="service_request", procedures_target=900, max_duration_s=0.4
        )


@dataclass
class WebResult:
    scheme: str
    axis_rate: float
    sr_pct_p50_ms: float
    plt_p50_s: float
    plt_p95_s: float
    utilization: float


def run_page_load(
    config: ControlPlaneConfig,
    axis_rate: float,
    spec: Optional[WebAppSpec] = None,
) -> WebResult:
    """Median/95p page load time at one load point."""
    spec = spec or WebAppSpec()
    point = run_pct_point(config, axis_rate, spec.run_spec())
    return WebResult(
        scheme=config.name,
        axis_rate=axis_rate,
        sr_pct_p50_ms=point.p50_ms,
        plt_p50_s=point.p50_ms / 1e3 + spec.page_fetch_s,
        plt_p95_s=point.p95_ms / 1e3 + spec.page_fetch_s,
        utilization=point.utilization,
    )
