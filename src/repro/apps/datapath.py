"""Data-path stall model: when can a UE's packets actually flow?

The application experiments (paper §6.6) measure how control-plane
latency bleeds into the data plane: during a handover the user-plane
path is interrupted from the moment the source BS commits to the
handover until the target-side bearer switch completes, and an idle UE
must complete a service request before any data moves.  This module
converts completed :class:`~repro.core.ue.ProcedureOutcome` records into
per-UE *stall intervals* and counts deadline misses for a periodic
packet stream crossing them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = ["StallInterval", "stalls_from_outcomes", "count_missed_deadlines"]

#: procedures that interrupt an established data path while they run.
_STALLING = ("handover", "fast_handover", "intra_handover", "re_attach")


@dataclass(frozen=True)
class StallInterval:
    """[start, end) window during which the UE's data path is down."""

    start: float
    end: float
    cause: str

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError("stall interval ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


def stalls_from_outcomes(outcomes: Iterable) -> List[StallInterval]:
    """Stall intervals implied by a sequence of procedure outcomes.

    A handover stalls the path for its whole PCT; a service request
    stalls (strictly: delays the first packet) for its PCT when the UE
    was idle; a Re-Attach (failure recovery) stalls for its PCT too.
    """
    stalls = []
    for outcome in outcomes:
        if outcome.pct is None:
            continue
        if outcome.name in _STALLING or outcome.name == "service_request":
            stalls.append(
                StallInterval(
                    outcome.started_at, outcome.started_at + outcome.pct, outcome.name
                )
            )
    stalls.sort(key=lambda s: s.start)
    return stalls


def count_missed_deadlines(
    stalls: Sequence[StallInterval],
    duration_s: float,
    packet_rate_hz: float,
    deadline_s: float,
    base_latency_s: float = 0.0,
    start_s: float = 0.0,
) -> Tuple[int, int]:
    """(missed, total) packets for a periodic stream crossing the stalls.

    A packet sent at ``t`` inside a stall is delivered when the stall
    ends; its latency is ``(stall.end - t) + base_latency_s``.  Packets
    outside stalls see ``base_latency_s``.  A packet misses when its
    latency exceeds ``deadline_s``.
    """
    if packet_rate_hz <= 0:
        raise ValueError("packet rate must be positive")
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    total = int(duration_s * packet_rate_hz)
    if base_latency_s > deadline_s:
        return total, total  # every packet is late even without stalls

    period = 1.0 / packet_rate_hz
    missed = 0
    end_s = start_s + duration_s
    for stall in stalls:
        if stall.end <= start_s or stall.start >= end_s:
            continue
        # Packets in [lo, hi) are delayed; those whose residual stall
        # time exceeds the deadline budget miss.
        lo = max(stall.start, start_s)
        hi = min(stall.end, end_s)
        budget = deadline_s - base_latency_s
        # A packet at time t misses iff stall.end - t > budget, i.e.
        # t < stall.end - budget.
        miss_hi = min(hi, stall.end - budget)
        if miss_hi <= lo:
            continue
        first_idx = math.ceil((lo - start_s) / period)
        last_idx = math.ceil((miss_hi - start_s) / period) - 1
        if last_idx >= first_idx:
            missed += last_idx - first_idx + 1
    return min(missed, total), total
