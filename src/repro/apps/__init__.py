"""Edge applications driven by the simulated control plane (§6.6):
self-driving car, VR, DASH video startup, and web page loads."""

from .datapath import StallInterval, count_missed_deadlines, stalls_from_outcomes
from .mobility import MobilityAppSpec, MobilityResult, run_mobility_experiment
from .selfdriving import run_self_driving, self_driving_spec
from .video import VideoAppSpec, VideoResult, run_video_startup
from .vr import run_vr, vr_spec
from .web import WebAppSpec, WebResult, run_page_load

__all__ = [
    "StallInterval",
    "stalls_from_outcomes",
    "count_missed_deadlines",
    "MobilityAppSpec",
    "MobilityResult",
    "run_mobility_experiment",
    "run_self_driving",
    "self_driving_spec",
    "run_vr",
    "vr_spec",
    "VideoAppSpec",
    "VideoResult",
    "run_video_startup",
    "WebAppSpec",
    "WebResult",
    "run_page_load",
]
