"""Virtual-reality application (paper §6.6, Fig. 14).

Head-tracked VR needs sub-16 ms motion-to-photon latency for perceptual
stability (§2.3: 60-90 Hz displays give 11.1-16.7 ms budgets); the
headset offloads pose/graphics traffic to the wireless edge.  Any
control-plane stall longer than the residual budget costs frames.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.config import ControlPlaneConfig
from .mobility import MobilityAppSpec, MobilityResult, run_mobility_experiment

__all__ = ["vr_spec", "run_vr"]

#: motion-to-photon budget for head-tracked VR (§6.6).
VR_DEADLINE_S = 0.016


def vr_spec(handovers: int = 1, **overrides) -> MobilityAppSpec:
    """The Fig. 14 configuration."""
    spec = MobilityAppSpec(
        packet_rate_hz=1000.0,
        deadline_s=VR_DEADLINE_S,
        base_latency_s=0.004,
        handovers=handovers,
    )
    return replace(spec, **overrides) if overrides else spec


def run_vr(
    config: ControlPlaneConfig,
    active_users: float,
    handovers: int = 1,
    spec: Optional[MobilityAppSpec] = None,
) -> MobilityResult:
    """Missed VR frame deadlines for one session under background load."""
    return run_mobility_experiment(config, active_users, spec or vr_spec(handovers))
