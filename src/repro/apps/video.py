"""Video startup delay model (paper §6.6 and Fig. 3).

The paper's setup: a stationary idle UE starts a DASH player; locally
replayed video removes network variation, so the startup delay is the
*service request PCT* (to get a data channel) plus the player's own
constant startup work (manifest fetch + initial buffer).  The model here
keeps exactly that structure: only the control-plane term varies with
the scheme and the load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.config import ControlPlaneConfig
from ..experiments.harness import RunSpec, run_pct_point

__all__ = ["VideoAppSpec", "VideoResult", "run_video_startup"]


@dataclass
class VideoAppSpec:
    """DASH-player constants (scheme-independent)."""

    #: manifest fetch + initial segment buffering against a local server.
    player_startup_s: float = 0.45
    run: Optional[RunSpec] = None

    def run_spec(self) -> RunSpec:
        return self.run or RunSpec(
            procedure="service_request", procedures_target=900, max_duration_s=0.4
        )


@dataclass
class VideoResult:
    scheme: str
    axis_rate: float
    sr_pct_p50_ms: float
    startup_p50_s: float
    startup_p95_s: float
    utilization: float


def run_video_startup(
    config: ControlPlaneConfig,
    axis_rate: float,
    spec: Optional[VideoAppSpec] = None,
) -> VideoResult:
    """Median/95p video startup delay at one load point."""
    spec = spec or VideoAppSpec()
    point = run_pct_point(config, axis_rate, spec.run_spec())
    return VideoResult(
        scheme=config.name,
        axis_rate=axis_rate,
        sr_pct_p50_ms=point.p50_ms,
        startup_p50_s=point.p50_ms / 1e3 + spec.player_startup_s,
        startup_p95_s=point.p95_ms / 1e3 + spec.player_startup_s,
        utilization=point.utilization,
    )
