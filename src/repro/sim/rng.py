"""Deterministic named random streams.

Every stochastic component (arrival process, link jitter, failure
injector, trace generator) draws from its own named stream so that
changing one component's consumption pattern never perturbs another —
a standard variance-reduction discipline for simulation studies.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "stream_seed"]


def stream_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``root_seed``."""
    digest = hashlib.blake2b(
        name.encode("utf-8"), digest_size=8, key=root_seed.to_bytes(8, "little", signed=False)
    ).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """Factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(stream_seed(self.seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        return RngRegistry(stream_seed(self.seed, "fork:" + salt))
