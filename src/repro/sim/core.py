"""Discrete-event simulation kernel.

This module provides the event loop used by every simulated component in
the reproduction: a binary-heap scheduler with a floating-point clock (in
seconds), condition-variable style :class:`Event` objects, and
generator-based :class:`Process` coroutines in the style of SimPy.

The kernel replaces the paper's DPDK testbed.  All protocol logic (CTA,
CPF, UE, base station) runs as processes on top of this loop, so latency
and queueing behaviour emerge from explicit service times and link delays
rather than being asserted.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
]


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    Used for failure injection: killing a CPF interrupts its worker loops.
    The ``cause`` attribute carries an arbitrary payload describing why.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; it can be made to ``succeed(value)`` or
    ``fail(exception)`` exactly once.  Processes that yield a pending event
    are resumed when it fires.  Yielding an already-fired event resumes the
    process on the next scheduler step (never synchronously), keeping
    process semantics uniform.
    """

    __slots__ = ("sim", "_value", "_exc", "_fired", "_waiters", "_cancelled", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._fired = False
        self._cancelled = False
        self._waiters: List[Callable[["Event"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def cancelled(self) -> bool:
        """True once the waiter abandoned this event (e.g. interrupted).

        Producers holding a reference (queues, stores) must skip
        cancelled events instead of delivering into the void.
        """
        return self._cancelled

    def cancel(self) -> None:
        """Mark a still-pending event as abandoned."""
        if not self._fired:
            self._cancelled = True

    @property
    def ok(self) -> bool:
        """True once the event fired successfully."""
        return self._fired and self._exc is None

    @property
    def value(self) -> Any:
        if not self._fired:
            raise RuntimeError("event %r has not fired yet" % (self.name,))
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._fired:
            raise RuntimeError("event %r already fired" % (self.name,))
        self._fired = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._fired:
            raise RuntimeError("event %r already fired" % (self.name,))
        self._fired = True
        self._exc = exc
        self._dispatch()
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(self)`` when the event fires (immediately if fired)."""
        if self._fired:
            self.sim.schedule(0.0, cb, self)
        else:
            self._waiters.append(cb)

    def _dispatch(self) -> None:
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self.sim.schedule(0.0, cb, self)


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative timeout delay: %r" % (delay,))
        super().__init__(sim, name="timeout(%g)" % delay)
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        # Skip both races: fired early via succeed/fail, or abandoned by
        # an interrupted waiter.  Firing a cancelled timeout would mark
        # it fired, so a producer's later succeed() on the abandoned
        # event would blow up with "event already fired".
        if not self._fired and not self._cancelled:
            self.succeed(value)


class AllOf(Event):
    """Fires when every child event has fired successfully.

    The value is the list of child values in the order given.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            sim.schedule(0.0, self._finish)
        else:
            for ev in self._children:
                ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._fired:
            return
        if not ev.ok:
            self.fail(ev._exc or RuntimeError("child event failed"))
            # The composite is dead: nobody will consume the remaining
            # children, so mark them abandoned before producers deliver.
            for child in self._children:
                if not child.fired:
                    child.cancel()
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._finish()

    def _finish(self) -> None:
        if not self._fired:
            self.succeed([ev.value for ev in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self._children):
            ev.add_callback(self._make_cb(i))

    def _make_cb(self, index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if self._fired:
                return
            if ev.ok:
                self.succeed((index, ev.value))
            else:
                self.fail(ev._exc or RuntimeError("child event failed"))

        return cb


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """A coroutine driven by the simulator.

    The generator yields :class:`Event` objects; it is resumed with the
    event's value once the event fires.  The process itself is an event
    that succeeds with the generator's return value, so processes can be
    joined by yielding them.
    """

    __slots__ = ("_gen", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "proc"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        sim.schedule(0.0, self._resume, None, None)

    @property
    def alive(self) -> bool:
        return not self._fired

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        Interrupting a finished process is a no-op (the usual race when a
        failure is injected just as a procedure completes).
        """
        if self._fired:
            return
        self._interrupts.append(Interrupt(cause))
        self.sim.schedule(0.0, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        if self._fired or not self._interrupts:
            return
        exc = self._interrupts.pop(0)
        waiting, self._waiting_on = self._waiting_on, None
        if waiting is not None:
            waiting.cancel()  # producers must not deliver into the void
        self._step(None, exc)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        self._step(value, exc)

    def _on_event(self, ev: Event) -> None:
        if self._fired or self._waiting_on is not ev:
            return  # stale wakeup (e.g. after an interrupt re-targeted us)
        self._waiting_on = None
        if ev.ok:
            self._step(ev.value, None)
        else:
            self._step(None, ev._exc)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._fired:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self.fail(unhandled)
            return
        except Exception as err:  # propagate to joiners
            self.fail(err)
            return
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(TypeError("process yielded %r, expected an Event" % (target,)))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)


class Simulator:
    """Event loop with a monotonically advancing simulated clock."""

    def __init__(self):
        self._now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, Callable, tuple]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling primitives -------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator as a simulated process."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False when empty."""
        if not self._heap:
            return False
        t, _seq, fn, args = heapq.heappop(self._heap)
        self._now = t
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes ``until``.

        With ``until`` set the clock is left exactly at ``until`` even if
        the next event lies beyond it, so back-to-back ``run`` calls
        compose predictably.
        """
        if until is None:
            while self.step():
                pass
            return self._now
        if until < self._now:
            raise ValueError(
                "until=%r is before current time %r" % (until, self._now)
            )
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self._now = until
        return self._now

    def run_process(self, gen: ProcessGen, until: Optional[float] = None) -> Any:
        """Convenience: start ``gen``, run the loop, return its result."""
        proc = self.process(gen)
        self.run(until)
        if not proc.fired:
            raise RuntimeError("process did not finish by t=%r" % (self._now,))
        return proc.value
