"""Discrete-event simulation kernel.

This module provides the event loop used by every simulated component in
the reproduction: a binary-heap scheduler with a floating-point clock (in
seconds), condition-variable style :class:`Event` objects, and
generator-based :class:`Process` coroutines in the style of SimPy.

The kernel replaces the paper's DPDK testbed.  All protocol logic (CTA,
CPF, UE, base station) runs as processes on top of this loop, so latency
and queueing behaviour emerge from explicit service times and link delays
rather than being asserted.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
]


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    Used for failure injection: killing a CPF interrupts its worker loops.
    The ``cause`` attribute carries an arbitrary payload describing why.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; it can be made to ``succeed(value)`` or
    ``fail(exception)`` exactly once.  Processes that yield a pending event
    are resumed when it fires.  Yielding an already-fired event resumes the
    process on the next scheduler step (never synchronously), keeping
    process semantics uniform.
    """

    __slots__ = ("sim", "_value", "_exc", "_fired", "_waiters", "_cancelled", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._fired = False
        self._cancelled = False
        self._waiters: List[Callable[["Event"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def cancelled(self) -> bool:
        """True once the waiter abandoned this event (e.g. interrupted).

        Producers holding a reference (queues, stores) must skip
        cancelled events instead of delivering into the void.
        """
        return self._cancelled

    def cancel(self) -> None:
        """Mark a still-pending event as abandoned."""
        if not self._fired:
            self._cancelled = True

    @property
    def ok(self) -> bool:
        """True once the event fired successfully."""
        return self._fired and self._exc is None

    @property
    def value(self) -> Any:
        if not self._fired:
            raise RuntimeError("event %r has not fired yet" % (self.name,))
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._fired:
            raise RuntimeError("event %r already fired" % (self.name,))
        self._fired = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._fired:
            raise RuntimeError("event %r already fired" % (self.name,))
        self._fired = True
        self._exc = exc
        self._dispatch()
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(self)`` when the event fires (async even if fired).

        A callback added to an already-fired event — succeeded *or*
        failed — is delivered on the next scheduler step with the event
        as argument, exactly like a waiter registered before the fire:
        late joiners of a failed event still receive (and must consume)
        the stored exception.
        """
        if self._fired:
            self.sim._push_immediate(cb, self)
        else:
            self._waiters.append(cb)

    def _dispatch(self) -> None:
        waiters = self._waiters
        if not waiters:
            return
        self._waiters = []
        # Inlined Simulator._push_immediate: waiter wakeups dominate the
        # event loop, so each one is a deque append rather than a heap
        # push.  Seq numbers are allocated in the same order schedule()
        # would have, preserving the (time, seq) total order.
        sim = self.sim
        seq = sim._seq
        immediate = sim._immediate
        arg = (self,)
        for cb in waiters:
            seq += 1
            immediate.append((seq, cb, arg))
        sim._seq = seq


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative timeout delay: %r" % (delay,))
        super().__init__(sim, name="timeout(%g)" % delay)
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        # Skip both races: fired early via succeed/fail, or abandoned by
        # an interrupted waiter.  Firing a cancelled timeout would mark
        # it fired, so a producer's later succeed() on the abandoned
        # event would blow up with "event already fired".
        if self._fired or self._cancelled:
            return
        # Fast path: inline succeed() + _dispatch without the re-fire
        # check (we just made it) or the generic callback indirection.
        # Waiter wakeups still go through the immediate queue with
        # freshly allocated seq numbers — bit-identical ordering to the
        # generic path, one Python frame cheaper per timer pop.
        self._fired = True
        self._value = value
        waiters = self._waiters
        if not waiters:
            return
        self._waiters = []
        sim = self.sim
        seq = sim._seq
        immediate = sim._immediate
        arg = (self,)
        for cb in waiters:
            seq += 1
            immediate.append((seq, cb, arg))
        sim._seq = seq


class AllOf(Event):
    """Fires when every child event has fired successfully.

    The value is the list of child values in the order given.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            sim.schedule(0.0, self._finish)
        else:
            for ev in self._children:
                ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._fired:
            return
        if not ev.ok:
            self.fail(ev._exc or RuntimeError("child event failed"))
            # The composite is dead: nobody will consume the remaining
            # children, so mark them abandoned before producers deliver.
            for child in self._children:
                if not child.fired:
                    child.cancel()
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._finish()

    def _finish(self) -> None:
        if not self._fired:
            self.succeed([ev.value for ev in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self._children):
            ev.add_callback(self._make_cb(i))

    def _make_cb(self, index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if self._fired:
                return
            if ev.ok:
                self.succeed((index, ev.value))
            else:
                self.fail(ev._exc or RuntimeError("child event failed"))
            # The race is decided: nobody will ever consume the losing
            # children, so mark them abandoned before producers (queues,
            # stores) deliver into them and die on "event already
            # fired" — mirroring AllOf's cancellation on failure.
            for child in self._children:
                if not child._fired:
                    child.cancel()

        return cb


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """A coroutine driven by the simulator.

    The generator yields :class:`Event` objects; it is resumed with the
    event's value once the event fires.  The process itself is an event
    that succeeds with the generator's return value, so processes can be
    joined by yielding them.
    """

    __slots__ = ("_gen", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "proc"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        sim._push_immediate(self._resume, None, None)

    @property
    def alive(self) -> bool:
        return not self._fired

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        Interrupting a finished process is a no-op (the usual race when a
        failure is injected just as a procedure completes).
        """
        if self._fired:
            return
        self._interrupts.append(Interrupt(cause))
        self.sim._push_immediate(self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        if self._fired or not self._interrupts:
            return
        exc = self._interrupts.pop(0)
        waiting, self._waiting_on = self._waiting_on, None
        if waiting is not None:
            waiting.cancel()  # producers must not deliver into the void
        self._step(None, exc)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        self._step(value, exc)

    def _on_event(self, ev: Event) -> None:
        if self._fired or self._waiting_on is not ev:
            return  # stale wakeup (e.g. after an interrupt re-targeted us)
        self._waiting_on = None
        if ev.ok:
            self._step(ev.value, None)
        else:
            self._step(None, ev._exc)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._fired:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self.fail(unhandled)
            return
        except Exception as err:  # propagate to joiners
            self.fail(err)
            return
        if type(target) is Timeout:
            # Fast path for the dominant yield: register the resume
            # callback directly, skipping the generic add_callback
            # dispatch (same waiter list, same wakeup ordering).
            self._waiting_on = target
            if target._fired:
                self.sim._push_immediate(self._on_event, target)
            else:
                target._waiters.append(self._on_event)
            return
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(TypeError("process yielded %r, expected an Event" % (target,)))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)


class Simulator:
    """Event loop with a monotonically advancing simulated clock.

    Callbacks are totally ordered by ``(fire time, seq)`` where ``seq``
    is a global monotone counter assigned at schedule time; same-time
    callbacks therefore run in schedule order.  Two structures carry
    that order:

    * a binary heap for timed callbacks (``delay > 0``);
    * an **immediate queue** (plain deque) for zero-delay callbacks —
      the ``schedule(0.0, ...)`` pattern that event dispatch and
      process wakeups produce dominates the loop, and those entries
      are always due *now*, already in seq order (appends allocate
      increasing seqs, and the queue fully drains before the clock can
      advance), so the heap's log-n push/pop is pure overhead for them.

    ``step`` merges the two: an immediate entry runs unless the heap's
    head is due at the current instant with a *smaller* seq (it was
    scheduled earlier for this exact time).  The merge reproduces the
    single-heap execution order bit for bit — the EventTrace-digest
    witness tests in ``tests/core/test_kernel_witnesses.py`` pin that.
    """

    def __init__(self):
        self._now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._immediate: Deque[Tuple[int, Callable, tuple]] = deque()
        # Bound once: schedule() and _push_immediate() run millions of
        # times per figure point; the attribute hops add up.
        self._imm_append = self._immediate.append

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling primitives -------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay == 0.0:
            seq = self._seq + 1
            self._seq = seq
            self._imm_append((seq, fn, args))
            return
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at the absolute instant ``time``.

        Compiled timelines (the batched cohort lane) pre-compute event
        times as running sums of individual delays.  Rescheduling those
        relatively (``schedule(time - now, ...)``) would not round-trip
        in floats — ``now + (time - now) != time`` in general — so
        absolute scheduling is the only way a pre-computed timeline can
        fire at exactly the instants the step-by-step path produces.
        ``time == now`` lands on the immediate queue, matching
        ``schedule(0.0, ...)``'s ordering semantics.
        """
        if time == self._now:
            seq = self._seq + 1
            self._seq = seq
            self._imm_append((seq, fn, args))
            return
        if time < self._now:
            raise ValueError(
                "cannot schedule into the past (time=%r < now=%r)"
                % (time, self._now)
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    def _push_immediate(self, fn: Callable, *args: Any) -> None:
        """Internal zero-delay schedule without the delay check."""
        seq = self._seq + 1
        self._seq = seq
        self._imm_append((seq, fn, args))

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator as a simulated process."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False when empty.

        Merges the immediate queue with the heap respecting the
        ``(time, seq)`` total order: immediate entries are due at the
        current instant, so only a heap entry due *now* with a smaller
        seq (scheduled earlier for this exact time) may preempt them.
        """
        immediate = self._immediate
        heap = self._heap
        if immediate:
            if heap:
                head = heap[0]
                if head[0] <= self._now and head[1] < immediate[0][0]:
                    heapq.heappop(heap)
                    self._now = head[0]
                    head[2](*head[3])
                    return True
            _seq, fn, args = immediate.popleft()
            fn(*args)
            return True
        if not heap:
            return False
        t, _seq, fn, args = heapq.heappop(heap)
        self._now = t
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queues drain or the clock passes ``until``.

        With ``until`` set the clock is left exactly at ``until`` even if
        the next event lies beyond it, so back-to-back ``run`` calls
        compose predictably.
        """
        # The drain loops inline step() — one Python call per event is
        # measurable at millions of events per figure point.
        immediate = self._immediate
        heap = self._heap
        heappop = heapq.heappop
        popleft = immediate.popleft
        if until is None:
            while True:
                if immediate:
                    if heap:
                        head = heap[0]
                        if head[0] <= self._now and head[1] < immediate[0][0]:
                            heappop(heap)
                            self._now = head[0]
                            head[2](*head[3])
                            continue
                    _seq, fn, args = popleft()
                    fn(*args)
                elif heap:
                    t, _seq, fn, args = heappop(heap)
                    self._now = t
                    fn(*args)
                else:
                    return self._now
        if until < self._now:
            raise ValueError(
                "until=%r is before current time %r" % (until, self._now)
            )
        while True:
            if immediate:  # immediate entries are always due now (<= until)
                if heap:
                    head = heap[0]
                    if head[0] <= self._now and head[1] < immediate[0][0]:
                        heappop(heap)
                        self._now = head[0]
                        head[2](*head[3])
                        continue
                _seq, fn, args = popleft()
                fn(*args)
            elif heap and heap[0][0] <= until:
                t, _seq, fn, args = heappop(heap)
                self._now = t
                fn(*args)
            else:
                break
        self._now = until
        return self._now

    def run_process(self, gen: ProcessGen, until: Optional[float] = None) -> Any:
        """Convenience: start ``gen``, run the loop, return its result."""
        proc = self.process(gen)
        self.run(until)
        if not proc.fired:
            raise RuntimeError("process did not finish by t=%r" % (self._now,))
        return proc.value
