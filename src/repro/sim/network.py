"""Links and latency models connecting simulated network functions.

The deployment model of the paper (§4.3) places CTAs and CPFs at the
edge: radio + backhaul to the CTA is a few milliseconds, CTA to a
co-located CPF is sub-millisecond, and CPF-to-CPF replication crosses
region boundaries.  :class:`Link` captures one directed hop; a
:class:`LatencyModel` centralizes the defaults so experiments can tweak
the geometry in one place.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .core import Simulator

__all__ = ["Link", "LatencyModel"]


class Link:
    """A directed hop with propagation delay, optional bandwidth + jitter.

    ``send`` schedules ``deliver(*args)`` after the per-message delay;
    messages never reorder on a link (FIFO is enforced by tracking the
    last scheduled arrival), which matches a TCP/SCTP control channel —
    S1AP runs over SCTP in real deployments.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_s: float,
        bandwidth_bps: Optional[float] = None,
        jitter_frac: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "link",
    ):
        if latency_s < 0:
            raise ValueError("negative link latency")
        if jitter_frac < 0:
            raise ValueError("negative jitter fraction")
        if jitter_frac > 0 and rng is None:
            raise ValueError("jitter requires an rng stream")
        self.sim = sim
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.jitter_frac = jitter_frac
        self.rng = rng
        self.name = name
        self.messages_sent = 0
        self.bytes_sent = 0
        self._last_arrival = 0.0
        self.up = True

    def delay(self, nbytes: int = 0) -> float:
        d = self.latency_s
        if self.bandwidth_bps and nbytes:
            d += (nbytes * 8.0) / self.bandwidth_bps
        if self.jitter_frac and self.rng is not None:
            d += self.latency_s * self.jitter_frac * self.rng.random()
        return d

    def send(self, nbytes: int, deliver: Callable[..., None], *args: Any) -> bool:
        """Schedule delivery; returns False (message lost) if link is down."""
        if not self.up:
            return False
        self.messages_sent += 1
        self.bytes_sent += nbytes
        arrival = self.sim.now + self.delay(nbytes)
        if arrival < self._last_arrival:  # preserve FIFO under jitter
            arrival = self._last_arrival
        self._last_arrival = arrival
        self.sim.schedule(arrival - self.sim.now, deliver, *args)
        return True


@dataclass
class LatencyModel:
    """One-way latencies (seconds) for each hop class in the deployment.

    Defaults mirror the paper's *testbed* geometry (§6.1): the DPDK
    traffic generator emulating UEs/BSs sits on the same switch as the
    core servers, so the radio leg is a short emulated hop, intra-edge
    hops are tens of microseconds, and only the inter-region leg (the
    level-2 replication / migration path) is a real metro-distance hop.
    Use :meth:`edge_wan` for a geographically spread edge deployment.
    """

    ue_bs: float = 25e-6           # emulated radio leg (generator hop)
    bs_cta: float = 10e-6          # BS to nearest edge site
    cta_cpf: float = 5e-6          # CTA co-located with CPF pool (§4.3)
    cpf_cpf_intra: float = 10e-6   # CPFs within one level-1 region
    cpf_cpf_inter: float = 250e-6  # across level-1 regions (level-2 ring)
    cpf_cpf_far: float = 1.5e-3    # across level-2 regions (level-3 ring)
    cpf_upf: float = 10e-6         # S11-like session programming
    remote_core: float = 20.0e-3   # legacy centralized core, for contrast
    jitter_frac: float = 0.0

    @classmethod
    def edge_wan(cls) -> "LatencyModel":
        """A geographically spread edge deployment (cell towers/COs)."""
        return cls(
            ue_bs=2.0e-3,
            bs_cta=0.5e-3,
            cta_cpf=0.05e-3,
            cpf_cpf_intra=0.1e-3,
            cpf_cpf_inter=2.0e-3,
            cpf_cpf_far=8.0e-3,
            cpf_upf=0.2e-3,
        )

    def validate(self) -> None:
        for field_name, value in self.__dict__.items():
            if field_name == "jitter_frac":
                continue
            if value < 0:
                raise ValueError("%s must be non-negative" % field_name)

    def link(
        self,
        sim: Simulator,
        hop: str,
        rng: Optional[random.Random] = None,
        name: str = "",
    ) -> Link:
        """Build a Link for a named hop class (e.g. ``'ue_bs'``)."""
        try:
            latency = getattr(self, hop)
        except AttributeError:
            raise KeyError("unknown hop class %r" % (hop,))
        return Link(
            sim,
            latency,
            jitter_frac=self.jitter_frac,
            rng=rng if self.jitter_frac else None,
            name=name or hop,
        )
