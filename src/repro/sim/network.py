"""Links and latency models connecting simulated network functions.

The deployment model of the paper (§4.3) places CTAs and CPFs at the
edge: radio + backhaul to the CTA is a few milliseconds, CTA to a
co-located CPF is sub-millisecond, and CPF-to-CPF replication crosses
region boundaries.  :class:`Link` captures one directed hop; a
:class:`LatencyModel` centralizes the defaults so experiments can tweak
the geometry in one place.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .core import Simulator
from .node import NodeFailed

__all__ = ["Link", "LinkDown", "Transit", "LatencyModel"]


class LinkDown(NodeFailed):
    """A message was lost on a link (blackhole, partition, or exhausted
    retransmissions).

    Subclasses :class:`~repro.sim.node.NodeFailed` on purpose: a reliable
    control channel (S1AP over SCTP) that gives up retransmitting reports
    an association failure, which the protocol layer treats exactly like
    a peer death — the CTA-driven recovery machinery takes over.
    """


@dataclass(frozen=True)
class Transit:
    """Outcome of one message crossing a link.

    ``delay`` is the end-to-end delivery delay including retransmissions
    and fault-injected perturbations, or ``None`` when the message was
    lost (link down / retransmission budget exhausted).
    """

    delay: Optional[float]
    duplicated: bool = False
    reordered: bool = False
    retransmits: int = 0

    @property
    def lost(self) -> bool:
        return self.delay is None

    @property
    def perturbed(self) -> bool:
        return (
            self.delay is None
            or self.duplicated
            or self.reordered
            or self.retransmits > 0
        )


class Link:
    """A directed hop with propagation delay, optional bandwidth + jitter.

    ``send`` schedules ``deliver(*args)`` after the per-message delay;
    messages never reorder on a link (FIFO is enforced by tracking the
    last scheduled arrival), which matches a TCP/SCTP control channel —
    S1AP runs over SCTP in real deployments.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_s: float,
        bandwidth_bps: Optional[float] = None,
        jitter_frac: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "link",
    ):
        if latency_s < 0:
            raise ValueError("negative link latency")
        if jitter_frac < 0:
            raise ValueError("negative jitter fraction")
        if jitter_frac > 0 and rng is None:
            raise ValueError("jitter requires an rng stream")
        self.sim = sim
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.jitter_frac = jitter_frac
        self.rng = rng
        self.name = name
        self.messages_sent = 0
        self.bytes_sent = 0
        self._last_arrival = 0.0
        self.up = True
        # -- fault-injection profile (all zero -> fast clean path) -----
        self.drop_p = 0.0
        self.dup_p = 0.0
        self.reorder_p = 0.0
        self.extra_delay_s = 0.0
        self.reorder_spread_s: Optional[float] = None
        self.rto_s: Optional[float] = None
        self.max_retx = 7
        self.fault_rng: Optional[random.Random] = None
        # fault counters (stable even when no faults are configured)
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.retransmits = 0

    # -- fault injection hooks (installed by repro.faults) -----------------

    def set_faults(
        self,
        drop_p: float = 0.0,
        dup_p: float = 0.0,
        reorder_p: float = 0.0,
        extra_delay_s: float = 0.0,
        rng: Optional[random.Random] = None,
        reorder_spread_s: Optional[float] = None,
        rto_s: Optional[float] = None,
        max_retx: int = 7,
    ) -> None:
        """Install a seeded perturbation profile on this link.

        Probabilities are per-message; ``rng`` must be supplied whenever
        any probability is non-zero so outcomes stay deterministic.
        """
        for p, label in ((drop_p, "drop_p"), (dup_p, "dup_p"), (reorder_p, "reorder_p")):
            if not 0.0 <= p < 1.0:
                raise ValueError("%s must be in [0, 1), got %r" % (label, p))
        if extra_delay_s < 0:
            raise ValueError("negative extra_delay_s")
        if (drop_p or dup_p or reorder_p) and rng is None:
            raise ValueError("probabilistic link faults require an rng stream")
        self.drop_p = drop_p
        self.dup_p = dup_p
        self.reorder_p = reorder_p
        self.extra_delay_s = extra_delay_s
        self.reorder_spread_s = reorder_spread_s
        self.rto_s = rto_s
        self.max_retx = max_retx
        self.fault_rng = rng

    def clear_faults(self) -> None:
        self.drop_p = self.dup_p = self.reorder_p = 0.0
        self.extra_delay_s = 0.0
        self.reorder_spread_s = None
        self.rto_s = None
        self.fault_rng = None

    @property
    def faulty(self) -> bool:
        return bool(
            self.drop_p or self.dup_p or self.reorder_p or self.extra_delay_s
        )

    def effective_rto(self) -> float:
        """Retransmission timeout: explicit, or 4 RTTs with a small floor."""
        if self.rto_s is not None:
            return self.rto_s
        return max(8.0 * self.latency_s, 1e-4)

    def transit(self, nbytes: int = 0) -> Transit:
        """Account one message and compute its (possibly faulty) fate.

        Clean path (no faults installed, link up) returns exactly
        ``Transit(self.delay(nbytes))`` — byte-identical to the historic
        ``sim.timeout(link.delay(n))`` behaviour.  A dropped message on a
        reliable control channel is retransmitted after
        :meth:`effective_rto` up to ``max_retx`` times before being
        declared lost (``delay=None``).
        """
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if not self.up:
            self.dropped += 1
            return Transit(None)
        delay = self.delay(nbytes)
        if not self.faulty:
            return Transit(delay)
        rng = self.fault_rng
        retx = 0
        if self.drop_p and rng is not None:
            while rng.random() < self.drop_p:
                retx += 1
                if retx > self.max_retx:
                    self.dropped += 1
                    self.retransmits += self.max_retx
                    return Transit(None, retransmits=self.max_retx)
                delay += self.effective_rto()
            self.retransmits += retx
        duplicated = False
        if self.dup_p and rng is not None and rng.random() < self.dup_p:
            duplicated = True
            self.duplicated += 1
            self.messages_sent += 1  # the copy consumes link resources
            self.bytes_sent += nbytes
        reordered = False
        if self.reorder_p and rng is not None and rng.random() < self.reorder_p:
            reordered = True
            self.reordered += 1
            spread = (
                self.reorder_spread_s
                if self.reorder_spread_s is not None
                else 4.0 * self.latency_s
            )
            delay += spread * rng.random()
        if self.extra_delay_s:
            delay += self.extra_delay_s
        return Transit(delay, duplicated, reordered, retx)

    def delay(self, nbytes: int = 0) -> float:
        d = self.latency_s
        if self.bandwidth_bps and nbytes:
            d += (nbytes * 8.0) / self.bandwidth_bps
        if self.jitter_frac and self.rng is not None:
            d += self.latency_s * self.jitter_frac * self.rng.random()
        return d

    def send(self, nbytes: int, deliver: Callable[..., None], *args: Any) -> bool:
        """Schedule delivery; returns False (message lost) if link is down."""
        if not self.up:
            return False
        self.messages_sent += 1
        self.bytes_sent += nbytes
        arrival = self.sim.now + self.delay(nbytes)
        if arrival < self._last_arrival:  # preserve FIFO under jitter
            arrival = self._last_arrival
        self._last_arrival = arrival
        self.sim.schedule(arrival - self.sim.now, deliver, *args)
        return True


@dataclass
class LatencyModel:
    """One-way latencies (seconds) for each hop class in the deployment.

    Defaults mirror the paper's *testbed* geometry (§6.1): the DPDK
    traffic generator emulating UEs/BSs sits on the same switch as the
    core servers, so the radio leg is a short emulated hop, intra-edge
    hops are tens of microseconds, and only the inter-region leg (the
    level-2 replication / migration path) is a real metro-distance hop.
    Use :meth:`edge_wan` for a geographically spread edge deployment.
    """

    ue_bs: float = 25e-6           # emulated radio leg (generator hop)
    bs_cta: float = 10e-6          # BS to nearest edge site
    cta_cpf: float = 5e-6          # CTA co-located with CPF pool (§4.3)
    cpf_cpf_intra: float = 10e-6   # CPFs within one level-1 region
    cpf_cpf_inter: float = 250e-6  # across level-1 regions (level-2 ring)
    cpf_cpf_far: float = 1.5e-3    # across level-2 regions (level-3 ring)
    cpf_upf: float = 10e-6         # S11-like session programming
    remote_core: float = 20.0e-3   # legacy centralized core, for contrast
    jitter_frac: float = 0.0

    @classmethod
    def edge_wan(cls) -> "LatencyModel":
        """A geographically spread edge deployment (cell towers/COs)."""
        return cls(
            ue_bs=2.0e-3,
            bs_cta=0.5e-3,
            cta_cpf=0.05e-3,
            cpf_cpf_intra=0.1e-3,
            cpf_cpf_inter=2.0e-3,
            cpf_cpf_far=8.0e-3,
            cpf_upf=0.2e-3,
        )

    def validate(self) -> None:
        for field_name, value in self.__dict__.items():
            if field_name == "jitter_frac":
                continue
            if value < 0:
                raise ValueError("%s must be non-negative" % field_name)

    def link(
        self,
        sim: Simulator,
        hop: str,
        rng: Optional[random.Random] = None,
        name: str = "",
    ) -> Link:
        """Build a Link for a named hop class (e.g. ``'ue_bs'``)."""
        try:
            latency = getattr(self, hop)
        except AttributeError:
            raise KeyError("unknown hop class %r" % (hop,))
        return Link(
            sim,
            latency,
            jitter_frac=self.jitter_frac,
            rng=rng if self.jitter_frac else None,
            name=name or hop,
        )
