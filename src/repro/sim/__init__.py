"""Discrete-event simulation substrate (testbed substitute).

Public surface:

* :class:`Simulator`, :class:`Event`, :class:`Process`, :class:`Interrupt`
  — the event loop and coroutine model.
* :class:`Server`, :class:`Store`, :class:`NodeFailed` — queued
  processing nodes with failure injection.
* :class:`Link`, :class:`LatencyModel` — network hops, with per-link
  fault hooks (drop/dup/reorder/extra-delay, blackhole); :class:`LinkDown`
  signals a lost message on a reliable channel.
* :class:`Tally`, :class:`Counter`, :class:`TimeWeighted` — probes.
* :class:`RngRegistry` — deterministic named random streams.
"""

from .core import AllOf, AnyOf, Event, Interrupt, Process, Simulator, Timeout
from .monitor import Counter, Tally, TimeWeighted, percentile, summarize
from .network import LatencyModel, Link, LinkDown, Transit
from .node import NodeFailed, Server, Store
from .rng import RngRegistry, stream_seed

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Server",
    "Store",
    "NodeFailed",
    "Link",
    "LinkDown",
    "Transit",
    "LatencyModel",
    "Tally",
    "Counter",
    "TimeWeighted",
    "percentile",
    "summarize",
    "RngRegistry",
    "stream_seed",
]
