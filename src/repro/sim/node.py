"""Queued-server model of a processing node.

A :class:`Server` models one network function instance (a CPF worker
core, a CTA forwarding core): jobs line up in a FIFO queue and ``cores``
workers drain it, each job holding a worker for its service time.  This
is where the saturation knees in the paper's figures come from — when the
offered load exceeds ``cores / E[service]`` the queue grows without bound
and completion times explode, exactly as in Figs. 7-11.

Failure injection (`fail()`) kills the workers and drops queued jobs,
failing their completion events with :class:`NodeFailed`, which is how a
CPF crash becomes visible to the protocol layer.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .core import Event, Interrupt, Process, Simulator
from .monitor import TimeWeighted

__all__ = ["NodeFailed", "Store", "Server"]


class NodeFailed(Exception):
    """A job was dropped because its server failed."""

    def __init__(self, node_name: str):
        super().__init__("node %s failed" % node_name)
        self.node_name = node_name


class Store:
    """Unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks (the paper's CTA/CPF queues are memory-bounded
    only by the log-pruning logic, modeled separately).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.fired and not getter.cancelled:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        ev = self.sim.event("get:%s" % self.name)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> List[Any]:
        """Remove and return all queued items (used on node failure)."""
        items = list(self._items)
        self._items.clear()
        return items

    def cancel_getters(self) -> None:
        """Synchronously abandon all pending getters (node failure).

        Must run before the getters' owners are interrupted: interrupt
        delivery is asynchronous, and a ``put`` racing in between would
        otherwise hand an item to a doomed waiter.
        """
        for getter in self._getters:
            getter.cancel()
        self._getters.clear()


class _Job:
    __slots__ = ("service", "done", "value", "enqueued_at")

    def __init__(self, service: float, done: Event, value: Any, enqueued_at: float):
        self.service = service
        self.done = done
        self.value = value
        self.enqueued_at = enqueued_at


class Server:
    """FIFO multi-worker queueing server with failure injection."""

    def __init__(self, sim: Simulator, cores: int = 1, name: str = "server"):
        if cores < 1:
            raise ValueError("server needs at least one core")
        self.sim = sim
        self.name = name
        self.cores = cores
        self.up = True
        self.queue = Store(sim, name + ".q")
        self.queue_depth = TimeWeighted(lambda: sim.now)
        self.busy = 0
        self.jobs_done = 0
        self.jobs_dropped = 0
        self.busy_time = 0.0
        # Express-reservation state (batched cohort lane): the end of the
        # last analytically-reserved service chain, and the pending jobs
        # that were rerouted onto it by submit().  A stale reservation
        # (``_reserved_until <= now``) simply expires by comparison.
        self._reserved_until = 0.0
        self._analytic: List[_Job] = []
        self._workers: List[Process] = []
        self._generation = 0
        self._start_workers()

    def _start_workers(self) -> None:
        # Workers carry a generation token: a worker from before a
        # fail()/recover() cycle must never consume jobs submitted to
        # the recovered server, even if its interrupt has not landed yet.
        self._generation += 1
        self._workers = [
            self.sim.process(
                self._worker(self._generation), name="%s.w%d" % (self.name, i)
            )
            for i in range(self.cores)
        ]

    def submit(
        self,
        service_time: float,
        value: Any = None,
        callback: Optional[Callable[[Any], None]] = None,
    ) -> Event:
        """Enqueue a job; the returned event fires with ``value`` once done.

        If the server is (or goes) down before completion the event fails
        with :class:`NodeFailed`.
        """
        if service_time < 0:
            raise ValueError("negative service time")
        done = self.sim.event("%s.job" % self.name)
        if callback is not None:
            done.add_callback(lambda ev: callback(ev.value) if ev.ok else None)
        if not self.up:
            done.fail(NodeFailed(self.name))
            return done
        if self._reserved_until > self.sim.now:
            # An express chain holds the server: a worker picking this
            # job up would start exactly when the chain ends, so route it
            # analytically behind the chain.  FIFO order and completion
            # times match the queued path bit for bit (every reservation
            # also computed ``start + service`` in floats).
            start = self._reserved_until
            end = start + service_time
            self._reserved_until = end
            job = _Job(service_time, done, value, self.sim.now)
            self._analytic.append(job)
            self.sim.schedule_at(end, self._finish_analytic, job)
            return done
        job = _Job(service_time, done, value, self.sim.now)
        self.queue.put(job)
        self.queue_depth.set(len(self.queue) + self.busy)
        return done

    def reserve(self, service_time: float, at: Optional[float] = None) -> float:
        """Occupy the server analytically; returns the completion time.

        The express path for pre-compiled timelines (the batched cohort
        lane): instead of enqueueing a job and waking a worker, the
        caller — who has already verified the server is ``up`` and
        either idle or express-reserved — books the service interval
        directly.  Accounting (``jobs_done``/``busy_time``) happens
        immediately; there is no completion event, the caller resumes
        its own timeline at the returned instant.  ``queue_depth`` is
        deliberately not updated (it is a measurement probe the batched
        lane does not report).

        ``at`` books the interval as of a *future* instant without
        advancing the clock — callers use it only when they have proven
        nothing else can run before ``at`` (see the lane's quiet-window
        fast path), so the booking is identical to one made at ``at``.
        """
        now = self.sim.now if at is None else at
        start = self._reserved_until if self._reserved_until > now else now
        end = start + service_time
        self._reserved_until = end
        self.jobs_done += 1
        self.busy_time += service_time
        return end

    def _finish_analytic(self, job: _Job) -> None:
        try:
            self._analytic.remove(job)
        except ValueError:
            return  # failed and cleared by fail() before completion
        self.jobs_done += 1
        self.busy_time += job.service
        if not job.done.fired:
            job.done.succeed(job.value)

    def _worker(self, generation: int):
        while generation == self._generation and self.up:
            getter = None
            try:
                getter = self.queue.get()
                job = yield getter
            except Interrupt:
                # The get may already have popped a job that was never
                # delivered to us; fail it rather than lose it silently.
                if getter is not None and getter.fired and getter.ok:
                    lost = getter.value
                    self.jobs_dropped += 1
                    if not lost.done.fired:
                        lost.done.fail(NodeFailed(self.name))
                return
            self.busy += 1
            self.queue_depth.set(len(self.queue) + self.busy)
            started = self.sim.now
            try:
                yield self.sim.timeout(job.service)
            except Interrupt:
                self.busy -= 1
                if not job.done.fired:
                    job.done.fail(NodeFailed(self.name))
                self.jobs_dropped += 1
                return
            self.busy -= 1
            self.busy_time += self.sim.now - started
            self.jobs_done += 1
            self.queue_depth.set(len(self.queue) + self.busy)
            if not job.done.fired:
                job.done.succeed(job.value)

    def fail(self) -> None:
        """Crash the node: kill workers, drop all queued jobs."""
        if not self.up:
            return
        self.up = False
        self.queue.cancel_getters()
        for worker in self._workers:
            worker.interrupt("node failure")
        for job in self.queue.drain():
            self.jobs_dropped += 1
            if not job.done.fired:
                job.done.fail(NodeFailed(self.name))
        for job in self._analytic:
            self.jobs_dropped += 1
            if not job.done.fired:
                job.done.fail(NodeFailed(self.name))
        del self._analytic[:]
        self._reserved_until = 0.0
        self.queue_depth.set(0)

    def recover(self) -> None:
        """Bring a failed node back with empty queues (state is gone)."""
        if self.up:
            return
        self.up = True
        self._start_workers()

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of core-time spent serving jobs so far."""
        horizon = elapsed if elapsed is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        return self.busy_time / (horizon * self.cores)
