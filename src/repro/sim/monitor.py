"""Measurement probes: tallies, counters, time-weighted series.

The experiment harness attaches these to the simulated network to collect
procedure completion times (PCTs), queue depths, and log sizes, and to
summarize them as the percentiles the paper plots.
"""

from __future__ import annotations

import math
from bisect import insort as bisect_insort
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Tally",
    "Counter",
    "TimeWeighted",
    "percentile",
    "summarize",
    "imbalance",
    "P2Quantile",
    "QuantileSketch",
]


def imbalance(values: Iterable[float]) -> float:
    """Peak-to-mean ratio of a non-negative load vector.

    1.0 means perfectly balanced; K means the busiest element carries K
    times the average load (the classic load-imbalance factor).  Empty
    or all-zero inputs report 1.0 — nothing is imbalanced about no
    load.  Used by the sharded-run heartbeat stream to report how far
    the slowest shard is ahead of its siblings.
    """
    vals = [float(v) for v in values]
    if not vals:
        return 1.0
    mean = sum(vals) / len(vals)
    if mean <= 0.0:
        return 1.0
    return max(vals) / mean


_RAISE = object()  # sentinel: distinguish "no default" from default=None


def percentile(sorted_values: Sequence[float], q: float, default: Any = _RAISE) -> Any:
    """Linear-interpolation percentile of a pre-sorted sequence.

    ``q`` is in [0, 100].  Matches numpy's default method so results are
    comparable with any external analysis.  An empty sequence raises
    unless ``default`` is given (warmup-only measurement windows produce
    legitimately empty tallies; callers pass ``default=None`` to report
    "no data" instead of crashing a whole sweep).
    """
    if not sorted_values:
        if default is _RAISE:
            raise ValueError("percentile of empty sequence")
        return default
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100], got %r" % (q,))
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(sorted_values[lo])
    frac = rank - lo
    return float(sorted_values[lo]) * (1 - frac) + float(sorted_values[hi]) * frac


class Tally:
    """Accumulates individual observations (e.g. one PCT per procedure)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.values: List[float] = []
        # Per-sample hot path: bind observe straight to list.append so
        # each observation is one C call, no Python frame.  Only when
        # the subclass hasn't overridden observe — the bound append
        # would silently shadow an override otherwise.
        if type(self).observe is Tally.observe:
            self.observe = self.values.append

    def observe(self, value: float) -> None:  # noqa: F811 — shadowed by the bound append
        # Reached only without the bound fast path: an overriding
        # subclass calling up, or one that skipped super().__init__
        # entirely (then self.values may not exist yet — create it so
        # the probe still works instead of raising AttributeError).
        values = self.__dict__.get("values")
        if values is None:
            values = self.values = []
        values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError("tally %r is empty" % (self.name,))
        return sum(self.values) / len(self.values)

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def percentile(self, q: float) -> Optional[float]:
        """Percentile of the observations, or ``None`` when empty.

        Unlike the module-level :func:`percentile` (whose contract is a
        hard error on empty input), a tally is a measurement probe: an
        empty one just means the window saw no observations — e.g. a
        warmup-only window — and reports ``None`` rather than raising.
        """
        return percentile(sorted(self.values), q, default=None)

    @property
    def median(self) -> Optional[float]:
        return self.percentile(50.0)

    def summary(self, qs: Iterable[float] = (5, 25, 50, 75, 95, 99)) -> Dict[str, float]:
        ordered = sorted(self.values)
        out = {"count": float(len(ordered))}
        if ordered:
            out["mean"] = self.mean
            out["min"] = ordered[0]
            out["max"] = ordered[-1]
            for q in qs:
                out["p%g" % q] = percentile(ordered, q)
        return out


class P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac 1985).

    Five markers track the running estimate in O(1) memory and O(1)
    time per observation — no sample list ever exists, which is what
    lets a city-scale run observe millions of procedure completions
    without the per-UE :class:`Tally` lists the small sweeps use.  The
    first five observations are stored exactly; afterwards marker
    heights move by the piecewise-parabolic (P²) update.
    """

    __slots__ = ("q", "_n", "_heights", "_positions", "_desired", "_rate", "count")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1), got %r" % (q,))
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rate = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            bisect_insort(heights, value)
            return
        positions = self._positions
        # Locate the cell and clamp the extremes.
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        rate = self._rate
        for i in range(5):
            desired[i] += rate[i]
        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            d = desired[i] - positions[i]
            below, above = positions[i] - positions[i - 1], positions[i + 1] - positions[i]
            if (d >= 1.0 and above > 1.0) or (d <= -1.0 and below > 1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> Optional[float]:
        """The current estimate, or ``None`` before any observation."""
        heights = self._heights
        if not heights:
            return None
        if len(heights) < 5 or self.count <= 5:
            # Exact while the sample fits in the marker buffer.
            return percentile(heights, self.q * 100.0)
        return heights[2]

    def atoms(self) -> List[Tuple[float, float]]:
        """The estimator's state as weighted sample atoms, for merging.

        While the sample still fits in the marker buffer the atoms are
        the exact observations (weight 1 each).  Afterwards each of the
        five markers stands for the slice of the sorted stream it has
        absorbed; splitting each inter-marker gap evenly between its two
        endpoints gives marker ``i`` the weight
        ``(pos[i+1] - pos[i-1]) / 2`` (the extremes keep their own
        half-gap plus the sample they pin), which telescopes to exactly
        ``count``.  A weighted percentile over the atoms of several
        estimators is the deterministic cross-shard combine rule.
        """
        heights = self._heights
        if not heights:
            return []
        if len(heights) < 5 or self.count <= 5:
            return [(float(h), 1.0) for h in heights]
        pos = self._positions
        weights = (
            (pos[1] - pos[0]) / 2.0 + 0.5,
            (pos[2] - pos[0]) / 2.0,
            (pos[3] - pos[1]) / 2.0,
            (pos[4] - pos[2]) / 2.0,
            (pos[4] - pos[3]) / 2.0 + 0.5,
        )
        return [(float(heights[i]), weights[i]) for i in range(5)]


def _weighted_percentile(
    atoms: Iterable[Tuple[float, float]], q: float
) -> Optional[float]:
    """Percentile ``q`` in (0,1) of weighted sample atoms.

    Midpoint-cumulative rule: atom ``i`` sits at cumulative mass
    ``(sum of weights before it) + w_i / 2``; the estimate linearly
    interpolates between neighbouring atoms and clamps to the extreme
    atom values outside their midpoints.  With unit weights and
    ``n`` values this lands within half a rank of the exact
    linear-interpolation percentile.  Pure float arithmetic over a
    sorted list — deterministic for a fixed multiset of atoms.
    """
    ordered = sorted((float(v), float(w)) for v, w in atoms if w > 0.0)
    if not ordered:
        return None
    total = sum(w for _, w in ordered)
    target = q * total
    points: List[Tuple[float, float]] = []
    cum = 0.0
    for v, w in ordered:
        points.append((cum + w / 2.0, v))
        cum += w
    if target <= points[0][0]:
        return points[0][1]
    if target >= points[-1][0]:
        return points[-1][1]
    for j in range(1, len(points)):
        c1, v1 = points[j]
        if target <= c1:
            c0, v0 = points[j - 1]
            if c1 <= c0:
                return v1
            frac = (target - c0) / (c1 - c0)
            return v0 + (v1 - v0) * frac
    return points[-1][1]


class _FrozenQuantile:
    """Read-only stand-in estimator inside a merged sketch.

    Holds the combined estimate for one quantile.  A merged sketch in
    the mixture regime has no stream to keep observing, so ``observe``
    refuses loudly instead of silently degrading the estimate.
    """

    __slots__ = ("q", "_value", "count")

    def __init__(self, q: float, value: Optional[float], count: int):
        self.q = q
        self._value = value
        self.count = count

    def value(self) -> Optional[float]:
        return self._value

    def observe(self, value: float) -> None:
        raise TypeError(
            "merged QuantileSketch is read-only (mixture regime); "
            "merge again instead of observing"
        )

    def atoms(self) -> List[Tuple[float, float]]:
        # Re-merging a merged sketch: the whole mass collapses onto the
        # estimate.  Coarse, but deterministic and mass-preserving.
        if self._value is None:
            return []
        return [(self._value, float(self.count))]


class QuantileSketch:
    """Bounded-memory replacement for :class:`Tally` at population scale.

    Tracks count/mean/min/max exactly and a fixed set of quantiles
    approximately (one :class:`P2Quantile` each).  Memory is O(1) per
    sketch regardless of how many observations stream through, so a
    100k-UE scenario can keep one per (region, procedure) pair.

    ``spill`` bounds an optional raw-sample buffer: while the stream
    fits (``count <= spill``) the raw values are retained in arrival
    order and quantile reads are exact; the first observation past the
    bound drops the buffer and reads fall back to the P² estimators
    (which are eagerly fed from the start, so the fallback loses
    nothing).  Sharded runs use a small spill so cross-shard merges of
    lightly-loaded (region, procedure) cells stay exact.
    """

    __slots__ = ("name", "count", "_sum", "_min", "_max", "_quantiles", "spill", "_raw")

    DEFAULT_QS = (0.50, 0.95, 0.99)

    def __init__(
        self, name: str = "", qs: Iterable[float] = DEFAULT_QS, spill: int = 0
    ):
        self.name = name
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._quantiles = {q: P2Quantile(q) for q in qs}
        self.spill = int(spill)
        self._raw: Optional[List[float]] = [] if self.spill > 0 else None

    def observe(self, value: float) -> None:
        value = float(value)
        # feed the estimators first: a frozen (merged-mixture) sketch
        # rejects the observation before any scalar is touched
        for est in self._quantiles.values():
            est.observe(value)
        self.count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        raw = self._raw
        if raw is not None:
            if self.count <= self.spill:
                raw.append(value)
            else:
                self._raw = None  # overflow: sketch-only from here on

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self.count if self.count else None

    @property
    def min(self) -> Optional[float]:
        return self._min if self.count else None

    @property
    def max(self) -> Optional[float]:
        return self._max if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate for ``q`` in (0,1); the sketch must track it.

        Each tracked quantile runs its own independent P² estimator,
        and independent approximations can cross on adversarial streams
        (heavy duplicates punctuated by rare spikes drive the p95
        marker above p99's).  Reads are therefore isotonically clamped:
        the estimate for ``q`` is the running max of the raw estimates
        over all tracked ``q' <= q``, so reported quantiles are always
        monotone in ``q``.  Every raw estimate already lies in
        ``[min, max]`` (the extreme markers track them exactly), so the
        clamped value does too.
        """
        try:
            est = self._quantiles[q]
        except KeyError:
            raise KeyError(
                "sketch %r does not track q=%r (has: %s)"
                % (self.name, q, sorted(self._quantiles))
            )
        if self._raw is not None:
            # Spill regime: the raw sample still fits — read it exactly.
            return percentile(sorted(self._raw), q * 100.0, default=None)
        value = est.value()
        if value is None:
            return None
        for other_q, other in self._quantiles.items():
            if other_q < q:
                low = other.value()
                if low is not None and low > value:
                    value = low
        return value

    def percentile(self, q: float) -> Optional[float]:
        """Tally-compatible accessor; ``q`` in [0, 100]."""
        return self.quantile(q / 100.0)

    def summary(self) -> Dict[str, Optional[float]]:
        out: Dict[str, Optional[float]] = {"count": float(self.count)}
        if self.count:
            out["mean"] = self.mean
            out["min"] = self._min
            out["max"] = self._max
            if self._raw is not None:
                ordered = sorted(self._raw)
                for q in sorted(self._quantiles):
                    out["p%g" % (q * 100.0)] = percentile(ordered, q * 100.0)
                return out
            floor = -math.inf
            for q, est in sorted(self._quantiles.items()):
                value = est.value()
                if value is not None:
                    # same isotonic clamp as quantile(): running max
                    if value < floor:
                        value = floor
                    floor = value
                out["p%g" % (q * 100.0)] = value
        return out

    @classmethod
    def merge(cls, sketches: Iterable["QuantileSketch"], name: str = "") -> "QuantileSketch":
        """Deterministically combine sketches of the same tracked quantiles.

        count/sum/min/max merge exactly.  If **every** input still holds
        its raw spill buffer, the merge is exact: the concatenated raw
        values are replayed (sorted, for input-order independence) into
        a fresh sketch whose spill bound covers the merged sample, so
        hierarchical merges stay exact too.  Otherwise the merge is a
        mixture combine: per tracked quantile, each input contributes
        its weighted sample atoms (raw values at weight 1, or the five
        P² marker atoms) and the estimate is their weighted percentile,
        clamped into the exact [min, max].  The mixture result is
        read-only — its estimators cannot absorb new observations.
        """
        inputs = [s for s in sketches if s is not None]
        if not inputs:
            return cls(name)
        qs = sorted(inputs[0]._quantiles)
        for s in inputs[1:]:
            if sorted(s._quantiles) != qs:
                raise ValueError(
                    "cannot merge sketches tracking different quantiles: %s vs %s"
                    % (qs, sorted(s._quantiles))
                )
        total = sum(s.count for s in inputs)
        if all(s._raw is not None for s in inputs):
            spill = max([total] + [s.spill for s in inputs])
            merged = cls(name, qs=qs, spill=spill)
            for value in sorted(v for s in inputs for v in s._raw):
                merged.observe(value)
            return merged
        out = cls(name, qs=qs)
        out.count = total
        out._sum = sum(s._sum for s in inputs)
        live = [s for s in inputs if s.count]
        if live:
            out._min = min(s._min for s in live)
            out._max = max(s._max for s in live)
        for q in qs:
            atoms: List[Tuple[float, float]] = []
            for s in live:
                if s._raw is not None:
                    atoms.extend((float(v), 1.0) for v in s._raw)
                else:
                    atoms.extend(s._quantiles[q].atoms())
            estimate = _weighted_percentile(atoms, q)
            if estimate is not None:
                estimate = min(max(estimate, out._min), out._max)
            out._quantiles[q] = _FrozenQuantile(q, estimate, total)
        return out


class Counter:
    """Named monotone counters (messages sent, deadlines missed, ...)."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def incr(self, key: str, by: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + by

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


class TimeWeighted:
    """Tracks a piecewise-constant quantity over time (queue/log size).

    Records (time, value) breakpoints; exposes the time-average and the
    maximum, which is what Fig. 17 (max CTA log size) needs.
    """

    def __init__(self, sim_now, initial: float = 0.0):
        # sim_now is a zero-arg callable returning the current sim time, so
        # the probe stays decoupled from the Simulator class.
        self._now = sim_now
        self._last_t = sim_now()
        self._value = initial
        self._area = 0.0
        self._start = self._last_t
        self.max_value = initial
        self.max_time = self._last_t

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        t = self._now()
        self._area += self._value * (t - self._last_t)
        self._last_t = t
        self._value = value
        if value > self.max_value:
            self.max_value = value
            self.max_time = t

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def time_average(self) -> float:
        t = self._now()
        elapsed = t - self._start
        if elapsed <= 0:
            return self._value
        return (self._area + self._value * (t - self._last_t)) / elapsed


def summarize(
    tallies: Dict[str, Tally], qs: Iterable[float] = (50, 95, 99)
) -> Dict[str, Dict[str, float]]:
    """Summaries for a dict of tallies; empty tallies yield count=0 rows."""
    return {name: tally.summary(qs) for name, tally in tallies.items()}
