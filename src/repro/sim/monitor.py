"""Measurement probes: tallies, counters, time-weighted series.

The experiment harness attaches these to the simulated network to collect
procedure completion times (PCTs), queue depths, and log sizes, and to
summarize them as the percentiles the paper plots.
"""

from __future__ import annotations

import math
from bisect import insort as bisect_insort
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Tally",
    "Counter",
    "TimeWeighted",
    "percentile",
    "summarize",
    "P2Quantile",
    "QuantileSketch",
]


_RAISE = object()  # sentinel: distinguish "no default" from default=None


def percentile(sorted_values: Sequence[float], q: float, default: Any = _RAISE) -> Any:
    """Linear-interpolation percentile of a pre-sorted sequence.

    ``q`` is in [0, 100].  Matches numpy's default method so results are
    comparable with any external analysis.  An empty sequence raises
    unless ``default`` is given (warmup-only measurement windows produce
    legitimately empty tallies; callers pass ``default=None`` to report
    "no data" instead of crashing a whole sweep).
    """
    if not sorted_values:
        if default is _RAISE:
            raise ValueError("percentile of empty sequence")
        return default
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100], got %r" % (q,))
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(sorted_values[lo])
    frac = rank - lo
    return float(sorted_values[lo]) * (1 - frac) + float(sorted_values[hi]) * frac


class Tally:
    """Accumulates individual observations (e.g. one PCT per procedure)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.values: List[float] = []
        # Per-sample hot path: bind observe straight to list.append so
        # each observation is one C call, no Python frame.  Only when
        # the subclass hasn't overridden observe — the bound append
        # would silently shadow an override otherwise.
        if type(self).observe is Tally.observe:
            self.observe = self.values.append

    def observe(self, value: float) -> None:  # noqa: F811 — shadowed by the bound append
        # Reached only without the bound fast path: an overriding
        # subclass calling up, or one that skipped super().__init__
        # entirely (then self.values may not exist yet — create it so
        # the probe still works instead of raising AttributeError).
        values = self.__dict__.get("values")
        if values is None:
            values = self.values = []
        values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError("tally %r is empty" % (self.name,))
        return sum(self.values) / len(self.values)

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def percentile(self, q: float) -> Optional[float]:
        """Percentile of the observations, or ``None`` when empty.

        Unlike the module-level :func:`percentile` (whose contract is a
        hard error on empty input), a tally is a measurement probe: an
        empty one just means the window saw no observations — e.g. a
        warmup-only window — and reports ``None`` rather than raising.
        """
        return percentile(sorted(self.values), q, default=None)

    @property
    def median(self) -> Optional[float]:
        return self.percentile(50.0)

    def summary(self, qs: Iterable[float] = (5, 25, 50, 75, 95, 99)) -> Dict[str, float]:
        ordered = sorted(self.values)
        out = {"count": float(len(ordered))}
        if ordered:
            out["mean"] = self.mean
            out["min"] = ordered[0]
            out["max"] = ordered[-1]
            for q in qs:
                out["p%g" % q] = percentile(ordered, q)
        return out


class P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac 1985).

    Five markers track the running estimate in O(1) memory and O(1)
    time per observation — no sample list ever exists, which is what
    lets a city-scale run observe millions of procedure completions
    without the per-UE :class:`Tally` lists the small sweeps use.  The
    first five observations are stored exactly; afterwards marker
    heights move by the piecewise-parabolic (P²) update.
    """

    __slots__ = ("q", "_n", "_heights", "_positions", "_desired", "_rate", "count")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1), got %r" % (q,))
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rate = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            bisect_insort(heights, value)
            return
        positions = self._positions
        # Locate the cell and clamp the extremes.
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        rate = self._rate
        for i in range(5):
            desired[i] += rate[i]
        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            d = desired[i] - positions[i]
            below, above = positions[i] - positions[i - 1], positions[i + 1] - positions[i]
            if (d >= 1.0 and above > 1.0) or (d <= -1.0 and below > 1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> Optional[float]:
        """The current estimate, or ``None`` before any observation."""
        heights = self._heights
        if not heights:
            return None
        if len(heights) < 5 or self.count <= 5:
            # Exact while the sample fits in the marker buffer.
            return percentile(heights, self.q * 100.0)
        return heights[2]


class QuantileSketch:
    """Bounded-memory replacement for :class:`Tally` at population scale.

    Tracks count/mean/min/max exactly and a fixed set of quantiles
    approximately (one :class:`P2Quantile` each).  Memory is O(1) per
    sketch regardless of how many observations stream through, so a
    100k-UE scenario can keep one per (region, procedure) pair.
    """

    __slots__ = ("name", "count", "_sum", "_min", "_max", "_quantiles")

    DEFAULT_QS = (0.50, 0.95, 0.99)

    def __init__(self, name: str = "", qs: Iterable[float] = DEFAULT_QS):
        self.name = name
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._quantiles = {q: P2Quantile(q) for q in qs}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        for est in self._quantiles.values():
            est.observe(value)

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self.count if self.count else None

    @property
    def min(self) -> Optional[float]:
        return self._min if self.count else None

    @property
    def max(self) -> Optional[float]:
        return self._max if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate for ``q`` in (0,1); the sketch must track it.

        Each tracked quantile runs its own independent P² estimator,
        and independent approximations can cross on adversarial streams
        (heavy duplicates punctuated by rare spikes drive the p95
        marker above p99's).  Reads are therefore isotonically clamped:
        the estimate for ``q`` is the running max of the raw estimates
        over all tracked ``q' <= q``, so reported quantiles are always
        monotone in ``q``.  Every raw estimate already lies in
        ``[min, max]`` (the extreme markers track them exactly), so the
        clamped value does too.
        """
        try:
            est = self._quantiles[q]
        except KeyError:
            raise KeyError(
                "sketch %r does not track q=%r (has: %s)"
                % (self.name, q, sorted(self._quantiles))
            )
        value = est.value()
        if value is None:
            return None
        for other_q, other in self._quantiles.items():
            if other_q < q:
                low = other.value()
                if low is not None and low > value:
                    value = low
        return value

    def percentile(self, q: float) -> Optional[float]:
        """Tally-compatible accessor; ``q`` in [0, 100]."""
        return self.quantile(q / 100.0)

    def summary(self) -> Dict[str, Optional[float]]:
        out: Dict[str, Optional[float]] = {"count": float(self.count)}
        if self.count:
            out["mean"] = self.mean
            out["min"] = self._min
            out["max"] = self._max
            floor = -math.inf
            for q, est in sorted(self._quantiles.items()):
                value = est.value()
                if value is not None:
                    # same isotonic clamp as quantile(): running max
                    if value < floor:
                        value = floor
                    floor = value
                out["p%g" % (q * 100.0)] = value
        return out


class Counter:
    """Named monotone counters (messages sent, deadlines missed, ...)."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def incr(self, key: str, by: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + by

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


class TimeWeighted:
    """Tracks a piecewise-constant quantity over time (queue/log size).

    Records (time, value) breakpoints; exposes the time-average and the
    maximum, which is what Fig. 17 (max CTA log size) needs.
    """

    def __init__(self, sim_now, initial: float = 0.0):
        # sim_now is a zero-arg callable returning the current sim time, so
        # the probe stays decoupled from the Simulator class.
        self._now = sim_now
        self._last_t = sim_now()
        self._value = initial
        self._area = 0.0
        self._start = self._last_t
        self.max_value = initial
        self.max_time = self._last_t

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        t = self._now()
        self._area += self._value * (t - self._last_t)
        self._last_t = t
        self._value = value
        if value > self.max_value:
            self.max_value = value
            self.max_time = t

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def time_average(self) -> float:
        t = self._now()
        elapsed = t - self._start
        if elapsed <= 0:
            return self._value
        return (self._area + self._value * (t - self._last_t)) / elapsed


def summarize(
    tallies: Dict[str, Tally], qs: Iterable[float] = (50, 95, 99)
) -> Dict[str, Dict[str, float]]:
    """Summaries for a dict of tallies; empty tallies yield count=0 rows."""
    return {name: tally.summary(qs) for name, tally in tallies.items()}
