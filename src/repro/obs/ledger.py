"""The run ledger: a structured end-of-run report for scale runs.

Every ``python -m repro scale`` invocation can write one JSON document
(``--ledger PATH``) capturing what ran and what it produced: the
config fingerprint (so a ledger can be matched to the exact code +
spec that made it), per-shard perf and health, the per-(region,
procedure) latency quantiles, and the auditor verdict.  The schema is
stable — ``schema`` names it and bumps only on breaking changes — so
downstream tooling (dashboards, the planned ``repro.orch`` controller,
regression diffing across PRs) can parse ledgers from different
versions of the tree.

Volatile fields (timestamps, wall-clock, RSS) live under ``perf`` and
``written_at``; everything else is deterministic for a fixed spec and
shard count, exactly like the merged trace digest recorded alongside.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Dict, Optional

__all__ = ["LEDGER_SCHEMA", "build_run_ledger", "write_run_ledger"]

#: bump only on breaking layout changes.
LEDGER_SCHEMA = "repro.run_ledger/v1"


def _config_fingerprint(config: Dict[str, Any]) -> str:
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def build_run_ledger(
    result,
    argv: Optional[list] = None,
    stream_path: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble the ledger dict from a :class:`ScaleResult`."""
    config = {
        "scenario": result.scenario,
        "mode": result.mode,
        "n_ue": result.n_ue,
        "duration_s": result.duration_s,
        "seed": result.seed,
        "n_shards": result.n_shards,
    }
    try:
        from ..experiments.cache import code_fingerprint

        code_fp = code_fingerprint()
    except Exception:  # pragma: no cover - fingerprint walk must not wedge
        code_fp = ""
    obs_snapshot = getattr(result, "obs_snapshot", None)
    obs_summary = None
    if obs_snapshot is not None:
        obs_summary = {
            "mode": obs_snapshot.get("mode"),
            "spans_started": obs_snapshot.get("spans_started", 0),
            "spans_finished": obs_snapshot.get("spans_finished", 0),
            "retention": obs_snapshot.get("retention"),
        }
    ledger = {
        "schema": LEDGER_SCHEMA,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": config,
        "config_fingerprint": _config_fingerprint(config),
        "code_fingerprint": code_fp,
        "auditor": {
            "serves": result.serves,
            "writes": result.writes,
            "violations": result.violations,
            "ok": result.violations == 0,
        },
        "procedures": {
            "completed": result.completed,
            "aborted": result.aborted,
            "recovered": result.recovered,
            "reattached": result.reattached,
        },
        "counters": dict(result.counters),
        "fault_counters": dict(result.fault_counters),
        "latency_ms": result.region_pct_ms,
        "lane": dict(result.lane),
        "perf": dict(result.perf),
        "shards": list(result.shards),
        "digest": result.digest,
        "trace_events": result.trace_events,
        "end_time_s": result.end_time_s,
        "regions_final": result.regions_final,
        "artifacts": {
            "trace": trace_path,
            "stream": stream_path,
        },
    }
    if obs_summary is not None:
        ledger["obs"] = obs_summary
    orch_policy = getattr(result, "orch_policy", None)
    if orch_policy is not None:
        ledger["orch"] = {
            "policy": dict(orch_policy),
            "summary": dict(getattr(result, "orch_summary", {}) or {}),
            "actions": list(getattr(result, "orch_log", []) or []),
        }
        compare = getattr(result, "orch_compare", None)
        if compare is not None:
            # --compare-baseline: the fixed-capacity control run's
            # verdict, recorded in the same ledger as the orchestrated
            # run so the improvement claim is self-contained
            ledger["orch"]["compare"] = dict(compare)
    if argv is not None:
        ledger["argv"] = list(argv)
    return ledger


def write_run_ledger(
    path: str,
    result,
    argv: Optional[list] = None,
    stream_path: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Build and write the ledger; records the path on the result."""
    ledger = build_run_ledger(
        result, argv=argv, stream_path=stream_path, trace_path=trace_path
    )
    with open(path, "w") as fp:
        json.dump(ledger, fp, indent=1, sort_keys=True)
        fp.write("\n")
    result.ledger_path = path
    return ledger
