"""Deterministic, sim-clock-timestamped spans with parent links.

A :class:`Span` records one unit of work on the simulated timeline —
a procedure run, a link traversal, a CPF service — with explicit
parent links so every procedure yields a causal tree.  The tracer is
built for a discrete-event simulator, which makes two things different
from wall-clock tracers:

* **Timestamps come from the sim clock** (a zero-arg callable), so a
  trace is bit-for-bit reproducible across runs and machines.

* **Determinism contract**: the tracer must never perturb the
  simulation schedule.  It draws no randomness, advances no clock,
  and schedules no work.  :meth:`Tracer.end_on` attaches a finish
  callback to an existing event; that allocates a callback seq, but
  seq allocation order for *protocol* callbacks is unchanged (an
  observer callback only shifts later seqs uniformly, preserving every
  relative ``(time, seq)`` comparison), and the callback itself only
  writes tracer state.  ``tests/obs/test_obs_witness.py`` pins this:
  obs-enabled runs reproduce the pre-obs EventTrace digests exactly.

Parenting is **explicit** (a ``parent=`` argument threaded through the
instrumented call chain), never an ambient "current span" stack: sim
processes interleave at every yield, so a global stack would attribute
one UE's hops to whichever procedure yielded last.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "Tracer"]


class Span:
    """One timed unit of work on the simulated timeline."""

    __slots__ = (
        "span_id", "parent_id", "root_id", "name", "phase",
        "start", "end", "status", "attrs",
    )

    def __init__(self, span_id, parent_id, root_id, name, phase, start, attrs):
        self.span_id: int = span_id
        self.parent_id: Optional[int] = parent_id
        self.root_id: int = root_id
        self.name = name
        #: latency-breakdown bucket ("transit", "cta", "cpf_serve", ...);
        #: defaults to the name's first dotted component.
        self.phase: str = phase
        self.start: float = start
        self.end: Optional[float] = None
        self.status: str = "open"
        self.attrs: dict = attrs

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def __repr__(self) -> str:
        return "Span(%d %s %s t=%.6f+%.6f %s)" % (
            self.span_id, self.name, self.phase,
            self.start, self.duration, self.status,
        )


class Tracer:
    """Allocates, finishes, and (optionally) retains spans.

    ``sim_now`` is a zero-arg callable returning the current sim time.
    ``retain=False`` keeps only counters and phase folds (the metrics
    mode: span objects live just long enough to be timed).  Span ids
    are sequential ints — deterministic, and stable enough for the
    RYW auditor to reference a violation's serving span.
    """

    def __init__(
        self,
        sim_now: Callable[[], float],
        retain: bool = True,
        on_root_finish: Optional[Callable[[Span, Dict[str, float]], None]] = None,
        on_offpath_finish: Optional[Callable[[Span], None]] = None,
    ):
        self._now = sim_now
        self.retain = retain
        self.spans: List[Span] = []
        self.started = 0
        self.finished = 0
        self._next_id = 1
        #: per-open-root phase accumulator: root span id -> {phase: seconds}.
        self._open_roots: Dict[int, Dict[str, float]] = {}
        self._on_root_finish = on_root_finish
        self._on_offpath_finish = on_offpath_finish

    # -- lifecycle ------------------------------------------------------------

    def begin(
        self, name: str, parent: Optional[Span] = None,
        phase: Optional[str] = None, **attrs
    ) -> Span:
        """Start a span now; link it under ``parent`` when given."""
        span_id = self._next_id
        self._next_id += 1
        self.started += 1
        if parent is not None:
            span = Span(span_id, parent.span_id, parent.root_id, name,
                        phase or name.split(".", 1)[0], self._now(), attrs)
        else:
            span = Span(span_id, None, span_id, name,
                        phase or name.split(".", 1)[0], self._now(), attrs)
            self._open_roots[span_id] = {}
        if self.retain:
            self.spans.append(span)
        return span

    def finish(
        self, span: Span, status: str = "ok",
        phases: Optional[Iterable[Tuple[str, float]]] = None, **attrs
    ) -> Span:
        """Close a span now.

        ``phases`` overrides the default fold of the span's whole
        duration into its single ``span.phase`` bucket — the CPF uses
        it to split one handle span into queue-wait and service time.
        """
        if span.end is not None:
            return span  # idempotent: callback-style code may race a ctx exit
        span.end = self._now()
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self.finished += 1
        if span.parent_id is None:
            folds = self._open_roots.pop(span.root_id, {})
            if self._on_root_finish is not None:
                self._on_root_finish(span, folds)
            return span
        acc = self._open_roots.get(span.root_id)
        if acc is not None:
            for phase, seconds in (phases or ((span.phase, span.duration),)):
                acc[phase] = acc.get(phase, 0.0) + seconds
        elif self._on_offpath_finish is not None:
            # Root already closed: off-critical-path work (checkpoint
            # shipping after the UE's PCT clock stopped).
            self._on_offpath_finish(span)
        return span

    @contextmanager
    def span(
        self, name: str, parent: Optional[Span] = None,
        phase: Optional[str] = None, **attrs
    ):
        """Context manager form for straight-line (generator) code.

        The span closes when the block exits — in a sim process that is
        the moment the process resumes past the block, which is exactly
        the fire time of whatever it yielded on.  An exception thrown
        into the block (a :class:`~repro.sim.node.NodeFailed` delivered
        at a yield) marks the span ``error`` and propagates.
        """
        span = self.begin(name, parent=parent, phase=phase, **attrs)
        try:
            yield span
        except BaseException:
            self.finish(span, status="error")
            raise
        self.finish(span)

    def end_on(self, span: Span, event) -> "object":
        """Finish ``span`` when ``event`` fires (callback-style code).

        Returns the event so call sites stay expressions.  The callback
        only records time and status — never sim state — so it is
        schedule-transparent (see the module docstring).
        """
        event.add_callback(
            lambda ev: self.finish(span, status="ok" if ev.ok else "error")
        )
        return event

    # -- queries --------------------------------------------------------------

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]
