"""Deterministic, sim-clock-timestamped spans with parent links.

A :class:`Span` records one unit of work on the simulated timeline —
a procedure run, a link traversal, a CPF service — with explicit
parent links so every procedure yields a causal tree.  The tracer is
built for a discrete-event simulator, which makes two things different
from wall-clock tracers:

* **Timestamps come from the sim clock** (a zero-arg callable), so a
  trace is bit-for-bit reproducible across runs and machines.

* **Determinism contract**: the tracer must never perturb the
  simulation schedule.  It draws no randomness, advances no clock,
  and schedules no work.  :meth:`Tracer.end_on` attaches a finish
  callback to an existing event; that allocates a callback seq, but
  seq allocation order for *protocol* callbacks is unchanged (an
  observer callback only shifts later seqs uniformly, preserving every
  relative ``(time, seq)`` comparison), and the callback itself only
  writes tracer state.  ``tests/obs/test_obs_witness.py`` pins this:
  obs-enabled runs reproduce the pre-obs EventTrace digests exactly.

Parenting is **explicit** (a ``parent=`` argument threaded through the
instrumented call chain), never an ambient "current span" stack: sim
processes interleave at every yield, so a global stack would attribute
one UE's hops to whichever procedure yielded last.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "SpanRetention", "Tracer", "span_rows", "spans_from_rows"]


class Span:
    """One timed unit of work on the simulated timeline."""

    __slots__ = (
        "span_id", "parent_id", "root_id", "name", "phase",
        "start", "end", "status", "attrs",
    )

    def __init__(self, span_id, parent_id, root_id, name, phase, start, attrs):
        self.span_id: int = span_id
        self.parent_id: Optional[int] = parent_id
        self.root_id: int = root_id
        self.name = name
        #: latency-breakdown bucket ("transit", "cta", "cpf_serve", ...);
        #: defaults to the name's first dotted component.
        self.phase: str = phase
        self.start: float = start
        self.end: Optional[float] = None
        self.status: str = "open"
        self.attrs: dict = attrs

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def __repr__(self) -> str:
        return "Span(%d %s %s t=%.6f+%.6f %s)" % (
            self.span_id, self.name, self.phase,
            self.start, self.duration, self.status,
        )

    def to_row(self) -> dict:
        """JSON-able wire form — what shard workers ship at merge time."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "root": self.root_id,
            "name": self.name,
            "phase": self.phase,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_row(cls, row: dict) -> "Span":
        span = cls(
            row["id"], row["parent"], row["root"], row["name"],
            row["phase"], row["start"], dict(row.get("attrs", ())),
        )
        span.end = row.get("end")
        span.status = row.get("status", "open")
        return span


def span_rows(spans: Iterable[Span]) -> List[dict]:
    return [s.to_row() for s in spans]


def spans_from_rows(rows: Iterable[dict]) -> List[Span]:
    return [Span.from_row(r) for r in rows]


class SpanRetention:
    """Bounded span retention for traced scale runs.

    Keeps the slowest ``slowest_k`` root trees per procedure plus
    *every* tree touching a fault, recovery, or migration (those are
    the runs worth a post-mortem), so ``--obs trace`` stays memory-safe
    at 100k+ UEs: retained spans are O(procedures-kinds x K + faults),
    not O(total procedures).

    The policy only sees *closed* roots — the tracer buffers each open
    root's tree and asks :meth:`admit` at root finish.  The slowest-K
    heap is a per-procedure min-heap of ``(duration, root_id)``; ties
    break on root id, so retention is deterministic.
    """

    #: span statuses of a clean run; anything else in a tree (error,
    #: failed, replica_down, reattach_required, ...) marks it
    #: fault-touched and exempts the tree from the slowest-K budget.
    #: Phases are deliberately NOT inspected: "migrate"/"recovery"
    #: phases appear in every ordinary full handover's context-transfer
    #: legs, so a phase rule would retain nearly all steady traffic.
    OK_STATUSES = frozenset(("ok", "completed", "acked"))

    def __init__(self, slowest_k: int = 32):
        if slowest_k < 1:
            raise ValueError("slowest_k must be >= 1, got %d" % slowest_k)
        self.slowest_k = slowest_k
        self.roots_kept = 0
        self.roots_dropped = 0
        self._heaps: Dict[str, List[Tuple[float, int]]] = {}

    def always_keep(self, root: Span, tree: List[Span]) -> bool:
        if not root.name.startswith("proc."):
            return True  # non-procedure roots (shard installs, ...) are rare
        attrs = root.attrs
        if attrs.get("recovered") or attrs.get("reattached"):
            return True
        ok = self.OK_STATUSES
        # still-open spans (off-path checkpoint legs in flight at root
        # close) are undecided, not fault-touched — a later error on a
        # dropped tree is an accepted miss of the bounded policy
        return any(s.end is not None and s.status not in ok for s in tree)

    def admit(self, proc: str, duration: float, root_id: int):
        """Slowest-K admission for a clean root.

        Returns ``(keep, evicted_root_id)``: whether to keep this root,
        and which previously-kept root to drop to make room (or None).
        """
        heap = self._heaps.setdefault(proc, [])
        item = (duration, root_id)
        if len(heap) < self.slowest_k:
            heapq.heappush(heap, item)
            return True, None
        if item <= heap[0]:
            return False, None
        evicted = heapq.heapreplace(heap, item)
        return True, evicted[1]

    def stats(self) -> dict:
        return {
            "limit": self.slowest_k,
            "roots_kept": self.roots_kept,
            "roots_dropped": self.roots_dropped,
        }


class Tracer:
    """Allocates, finishes, and (optionally) retains spans.

    ``sim_now`` is a zero-arg callable returning the current sim time.
    ``retain=False`` keeps only counters and phase folds (the metrics
    mode: span objects live just long enough to be timed).  Span ids
    are sequential ints — deterministic, and stable enough for the
    RYW auditor to reference a violation's serving span.
    """

    def __init__(
        self,
        sim_now: Callable[[], float],
        retain: bool = True,
        on_root_finish: Optional[Callable[[Span, Dict[str, float]], None]] = None,
        on_offpath_finish: Optional[Callable[[Span], None]] = None,
        retention: Optional[SpanRetention] = None,
    ):
        self._now = sim_now
        self.retain = retain
        self._spans: List[Span] = []
        self.started = 0
        self.finished = 0
        self._next_id = 1
        #: per-open-root phase accumulator: root span id -> {phase: seconds}.
        self._open_roots: Dict[int, Dict[str, float]] = {}
        self._on_root_finish = on_root_finish
        self._on_offpath_finish = on_offpath_finish
        #: bounded-retention policy; None = keep every span (legacy path).
        self.retention = retention if retain else None
        # under retention, spans buffer per open root and move to _kept
        # (or are dropped) when the root closes and the policy decides.
        self._trees: Dict[int, List[Span]] = {}
        self._kept: Dict[int, List[Span]] = {}
        #: the most recently dropped root's tree, held one decision long
        #: so a caller learning *after* the fact that the root matters
        #: (it anchored a cross-shard migration) can rescue it via
        #: :meth:`pin` — the shard engine only discovers emigration
        #: synchronously after the root finishes.
        self._limbo: Optional[Tuple[int, List[Span]]] = None
        #: root ids exempt from slowest-K eviction (migration anchors).
        self._pinned: set = set()

    @property
    def spans(self) -> List[Span]:
        """Every retained span, in span-id order.

        Without a retention policy this is the live append list (zero
        cost).  With one, it materialises kept trees plus still-open
        trees — export-time use only, not a hot path.
        """
        if self.retention is None:
            return self._spans
        out: List[Span] = []
        for tree in self._kept.values():
            out.extend(tree)
        for tree in self._trees.values():
            out.extend(tree)
        out.sort(key=lambda s: s.span_id)
        return out

    # -- lifecycle ------------------------------------------------------------

    def begin(
        self, name: str, parent: Optional[Span] = None,
        phase: Optional[str] = None, **attrs
    ) -> Span:
        """Start a span now; link it under ``parent`` when given."""
        span_id = self._next_id
        self._next_id += 1
        self.started += 1
        if parent is not None:
            span = Span(span_id, parent.span_id, parent.root_id, name,
                        phase or name.split(".", 1)[0], self._now(), attrs)
        else:
            span = Span(span_id, None, span_id, name,
                        phase or name.split(".", 1)[0], self._now(), attrs)
            self._open_roots[span_id] = {}
        if self.retain:
            if self.retention is None:
                self._spans.append(span)
            else:
                self._buffer(span)
        return span

    def _buffer(self, span: Span) -> None:
        """Retention path: park the span with its root's tree."""
        if span.parent_id is None:
            self._trees[span.span_id] = [span]
            return
        tree = self._trees.get(span.root_id)
        if tree is not None:
            tree.append(span)
            return
        kept = self._kept.get(span.root_id)
        if kept is not None:
            # late off-path work (checkpoint ship after the root closed)
            # under a kept root: the tree grows, it was already admitted
            kept.append(span)
        # else: the root was dropped — so is its late work

    def finish(
        self, span: Span, status: str = "ok",
        phases: Optional[Iterable[Tuple[str, float]]] = None, **attrs
    ) -> Span:
        """Close a span now.

        ``phases`` overrides the default fold of the span's whole
        duration into its single ``span.phase`` bucket — the CPF uses
        it to split one handle span into queue-wait and service time.
        """
        if span.end is not None:
            return span  # idempotent: callback-style code may race a ctx exit
        span.end = self._now()
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self.finished += 1
        if span.parent_id is None:
            folds = self._open_roots.pop(span.root_id, {})
            if self._on_root_finish is not None:
                self._on_root_finish(span, folds)
            if self.retention is not None:
                self._decide_root(span)
            return span
        acc = self._open_roots.get(span.root_id)
        if acc is not None:
            for phase, seconds in (phases or ((span.phase, span.duration),)):
                acc[phase] = acc.get(phase, 0.0) + seconds
        elif self._on_offpath_finish is not None:
            # Root already closed: off-critical-path work (checkpoint
            # shipping after the UE's PCT clock stopped).
            self._on_offpath_finish(span)
        return span

    @contextmanager
    def span(
        self, name: str, parent: Optional[Span] = None,
        phase: Optional[str] = None, **attrs
    ):
        """Context manager form for straight-line (generator) code.

        The span closes when the block exits — in a sim process that is
        the moment the process resumes past the block, which is exactly
        the fire time of whatever it yielded on.  An exception thrown
        into the block (a :class:`~repro.sim.node.NodeFailed` delivered
        at a yield) marks the span ``error`` and propagates.
        """
        span = self.begin(name, parent=parent, phase=phase, **attrs)
        try:
            yield span
        except BaseException:
            self.finish(span, status="error")
            raise
        self.finish(span)

    def end_on(self, span: Span, event) -> "object":
        """Finish ``span`` when ``event`` fires (callback-style code).

        Returns the event so call sites stay expressions.  The callback
        only records time and status — never sim state — so it is
        schedule-transparent (see the module docstring).
        """
        event.add_callback(
            lambda ev: self.finish(span, status="ok" if ev.ok else "error")
        )
        return event

    def _decide_root(self, root: Span) -> None:
        """A root closed under retention: keep its tree or drop it."""
        tree = self._trees.pop(root.span_id, None)
        if tree is None:  # pragma: no cover - defensive (double finish)
            return
        policy = self.retention
        if policy.always_keep(root, tree):
            self._kept[root.span_id] = tree
            policy.roots_kept += 1
            return
        proc = str(root.attrs.get("proc", root.name))
        keep, evicted = policy.admit(proc, root.duration, root.span_id)
        if not keep:
            # hold in limbo one decision long: pin() may resurrect it
            self._limbo = (root.span_id, tree)
            policy.roots_dropped += 1
            return
        self._kept[root.span_id] = tree
        policy.roots_kept += 1
        if evicted is not None and evicted not in self._pinned:
            self._kept.pop(evicted, None)
            policy.roots_kept -= 1
            policy.roots_dropped += 1

    def pin(self, root_id: int) -> bool:
        """Exempt a kept (or just-dropped) root tree from eviction.

        The cross-shard migration anchor: the shard engine learns a
        procedure emigrated its UE only after the root span finished —
        and possibly after slowest-K admission already rejected it.  A
        pinned root survives in ``_kept`` regardless of later
        evictions; a root sitting in limbo (the immediately preceding
        drop decision) is resurrected.  Returns whether the tree is
        retained.
        """
        if root_id in self._kept:
            self._pinned.add(root_id)
            return True
        limbo = self._limbo
        if limbo is not None and limbo[0] == root_id:
            self._kept[root_id] = limbo[1]
            self._pinned.add(root_id)
            self._limbo = None
            policy = self.retention
            if policy is not None:
                policy.roots_kept += 1
                policy.roots_dropped -= 1
            return True
        return False

    # -- queries --------------------------------------------------------------

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]
