"""``repro.obs``: deterministic tracing + metrics for the simulated core.

The paper's argument is a latency *decomposition* — checkpointing off
the critical path, cheap serialization (§4.2, §4.4) — so the
reproduction needs to see *where* a procedure spent its time, not just
its end-to-end PCT.  This package provides:

* :class:`~repro.obs.tracer.Tracer` — sim-clock spans with explicit
  parent links covering the whole procedure lifecycle (UE start/finish,
  every ``Deployment.hop`` transit, CPF queue/serve, CTA log append,
  checkpoint ship/ack, failover/replay);
* :class:`~repro.obs.metrics.MetricsRegistry` — labeled Counter /
  Gauge / Histogram instruments built on ``sim.monitor`` primitives,
  snapshotable mid-run and mergeable across parallel sweep workers;
* :mod:`~repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and
  plain-text timelines (``python -m repro obs fig07``).

The facade is :class:`Observability`: construct one (mode ``"trace"``
retains spans for export; ``"metrics"`` keeps only phase histograms and
counters), :meth:`~Observability.install` it on a
:class:`~repro.core.deployment.Deployment`, run, then
:meth:`~Observability.snapshot` or export.  When no observability is
installed (``dep.obs is None``, the default) every instrumentation site
is a single attribute check — the disabled-mode overhead guarded by
``benchmarks/test_obs_overhead.py``.

Determinism contract: enabling obs never changes simulation behaviour —
no RNG draws, no clock advances, no scheduled work; witness tests pin
that obs-enabled runs reproduce pre-obs EventTrace digests and PCT rows
bit for bit (see :mod:`repro.obs.tracer`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_snapshot,
    merge_snapshots,
    summarize_histogram,
)
from .tracer import Span, SpanRetention, Tracer, span_rows

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "SpanRetention",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "label_snapshot",
    "merge_snapshots",
    "summarize_histogram",
]

#: valid Observability modes (RunSpec.obs_mode adds "off" = don't install).
MODES = ("metrics", "trace")


class Observability:
    """Tracer + metrics registry bound to one deployment run."""

    def __init__(self, mode: str = "trace", span_keep: Optional[int] = None):
        if mode not in MODES:
            raise ValueError("obs mode must be one of %r, got %r" % (MODES, mode))
        self.mode = mode
        #: bounded span retention (trace mode): keep the slowest-K roots
        #: per procedure plus every fault/recovery/migration tree.
        #: None = retain everything (figure-scale runs).
        self.span_keep = span_keep
        self.tracer: Optional[Tracer] = None
        self.metrics: Optional[MetricsRegistry] = None
        self._dep = None
        #: (span_id, ue) of the most recently finished root span — the
        #: shard engine reads it synchronously after a procedure returns
        #: to anchor cross-shard migration flow events.
        self.last_root: Optional[Tuple[int, str]] = None
        #: cross-shard migration flow tables (trace mode, sharded runs):
        #: matched by link id at stitch time.
        self.flows_out: List[dict] = []
        self.flows_in: List[dict] = []

    def install(self, dep) -> "Observability":
        """Bind to a deployment's sim clock and set ``dep.obs``.

        One Observability per run: rebinding would mix spans of two
        simulations into one timeline.
        """
        if self._dep is not None:
            raise RuntimeError("Observability is already installed on a deployment")
        sim_now = lambda: dep.sim.now  # noqa: E731 — tiny clock closure
        retention = None
        if self.mode == "trace" and self.span_keep:
            retention = SpanRetention(self.span_keep)
        self.tracer = Tracer(
            sim_now,
            retain=(self.mode == "trace"),
            on_root_finish=self._fold_root,
            on_offpath_finish=self._fold_offpath,
            retention=retention,
        )
        self.metrics = MetricsRegistry(sim_now)
        self._dep = dep
        dep.obs = self
        return self

    # -- instrumentation hooks -------------------------------------------------

    def on_hop(self, hop_class: str, nbytes: int, event, parent) -> None:
        """Per-link-traversal hook called by :meth:`Deployment.hop`."""
        self.metrics.counter("hop_messages", hop=hop_class).inc()
        self.metrics.counter("hop_bytes", hop=hop_class).inc(nbytes)
        if parent is None:
            # Un-parented transits (call sites outside any procedure)
            # are counted but not traced: a bare hop root would pollute
            # the per-procedure timelines and phase histograms.
            return
        span = self.tracer.begin(
            "hop." + hop_class, parent=parent, phase="transit", nbytes=nbytes
        )
        self.tracer.end_on(span, event)

    def note_migration_out(
        self, link: str, span_id: Optional[int], t: float, ue: str, dst: int
    ) -> None:
        """A UE emigrated: anchor the flow start on its last root span.

        Called by the shard engine on the *obs channel only* — the link
        id never enters the sim-side migration record, so the sharded
        digest is identical with or without tracing installed.
        """
        if span_id is not None and self.tracer.retention is not None:
            # the anchor must survive bounded retention or the stitched
            # flow event loses its source track; resurrects a root that
            # slowest-K admission just rejected
            self.tracer.pin(span_id)
        self.flows_out.append(
            {"link": link, "span": span_id, "t": t, "ue": ue, "dst": dst}
        )

    def note_migration_in(
        self, link: Optional[str], span_id: int, t: float, ue: str
    ) -> None:
        if link is None:
            return  # source shard ran without tracing; nothing to stitch
        self.flows_in.append({"link": link, "span": span_id, "t": t, "ue": ue})

    def _fold_root(self, root: Span, phases: Dict[str, float]) -> None:
        """A procedure root closed: record its per-phase decomposition."""
        if self.tracer.retain:
            self.last_root = (root.span_id, str(root.attrs.get("ue", "")))
        proc = str(root.attrs.get("proc", root.name))
        metrics = self.metrics
        metrics.histogram("proc_total_s", proc=proc).observe(root.duration)
        accounted = 0.0
        for phase, seconds in phases.items():
            metrics.histogram("phase_s", proc=proc, phase=phase).observe(seconds)
            accounted += seconds
        # Whatever the instrumented children don't cover (UE think time
        # between steps is zero here, but queueing outside any span is
        # not) shows up explicitly instead of silently vanishing.
        other = root.duration - accounted
        if other > 0:
            metrics.histogram("phase_s", proc=proc, phase="other").observe(other)

    def _fold_offpath(self, span: Span) -> None:
        """Work finishing after its root closed (off the critical path)."""
        self.metrics.histogram(
            "offpath_s", phase=span.phase, span=span.name
        ).observe(span.duration)

    # -- results ---------------------------------------------------------------

    def snapshot(self, include_spans: bool = False) -> Dict[str, object]:
        """JSON-able state: metric dump + span accounting.  Mid-run safe.

        ``include_spans=True`` (trace mode) additionally exports the
        retained span table and the migration flow tables — the wire
        form shard workers ship to the coordinator for stitching.
        """
        snap: Dict[str, object] = {
            "mode": self.mode,
            "spans_started": self.tracer.started if self.tracer else 0,
            "spans_finished": self.tracer.finished if self.tracer else 0,
            "metrics": self.metrics.snapshot() if self.metrics else None,
        }
        tracer = self.tracer
        if tracer is not None and tracer.retention is not None:
            snap["retention"] = tracer.retention.stats()
        if include_spans and tracer is not None and tracer.retain:
            snap["spans"] = span_rows(tracer.spans)
            snap["flows_out"] = list(self.flows_out)
            snap["flows_in"] = list(self.flows_in)
        return snap
