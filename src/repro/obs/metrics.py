"""Labeled metric instruments over the :mod:`repro.sim.monitor` probes.

A :class:`MetricsRegistry` hands out named :class:`Counter`,
:class:`Gauge`, and :class:`Histogram` instruments keyed by
``(name, sorted label items)``.  Histograms subclass
:class:`~repro.sim.monitor.Tally` (keeping its bound-append fast path);
gauges wrap :class:`~repro.sim.monitor.TimeWeighted` so they carry the
time-average and peak, which is what queue/log-size probes need.

Snapshots are plain JSON-able dicts in a deterministic order, so they
ride inside :class:`~repro.experiments.harness.PCTPoint` results
through pickling (parallel sweep workers) and the result cache's JSON
round trip unchanged.  :func:`merge_snapshots` folds per-point
snapshots together *in input order*; because
:func:`repro.experiments.parallel.run_jobs` returns points positionally
aligned with its job list, merging parallel results is bit-identical
to merging the serial loop's.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.monitor import Tally, TimeWeighted, percentile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "label_snapshot",
    "merge_snapshots",
    "summarize_histogram",
]

_LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(name: str, labels: Dict[str, object]) -> _LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotone labeled counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, by: int = 1) -> None:
        self.value += by


class Gauge:
    """Piecewise-constant labeled quantity (queue depth, log bytes)."""

    __slots__ = ("name", "labels", "_probe")

    def __init__(self, name: str, labels: Dict[str, str], sim_now: Callable[[], float]):
        self.name = name
        self.labels = labels
        self._probe = TimeWeighted(sim_now)

    def set(self, value: float) -> None:
        self._probe.set(value)

    def add(self, delta: float) -> None:
        self._probe.add(delta)

    @property
    def value(self) -> float:
        return self._probe.value

    @property
    def max_value(self) -> float:
        return self._probe.max_value

    def time_average(self) -> float:
        return self._probe.time_average()


class Histogram(Tally):
    """Labeled distribution; a :class:`Tally` with registry identity.

    Calls ``super().__init__`` so it keeps the per-sample bound-append
    fast path (and is the regression canary for the ``Tally.observe``
    subclassing fix — see ``tests/obs/test_metrics.py``).
    """

    def __init__(self, name: str, labels: Dict[str, str]):
        super().__init__(name)
        self.labels = labels


class MetricsRegistry:
    """Creates-or-returns instruments by ``name`` + label set."""

    def __init__(self, sim_now: Optional[Callable[[], float]] = None):
        self._now = sim_now or (lambda: 0.0)
        self._counters: Dict[_LabelKey, Counter] = {}
        self._gauges: Dict[_LabelKey, Gauge] = {}
        self._histograms: Dict[_LabelKey, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = _label_key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, dict(key[1]))
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = _label_key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, dict(key[1]), self._now)
        return inst

    def histogram(self, name: str, **labels) -> Histogram:
        key = _label_key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, dict(key[1]))
        return inst

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, list]:
        """JSON-able dump, callable mid-run; deterministic key order.

        Histograms carry their raw sample lists (not just summaries) so
        merged snapshots aggregate exactly — percentiles of a merge are
        computed over all samples, never averaged averages.
        """
        return {
            "counters": [
                {"name": c.name, "labels": c.labels, "value": c.value}
                for _k, c in sorted(self._counters.items())
            ],
            "gauges": [
                {
                    "name": g.name,
                    "labels": g.labels,
                    "last": g.value,
                    "max": g.max_value,
                    "time_average": g.time_average(),
                }
                for _k, g in sorted(self._gauges.items())
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": h.labels,
                    "count": h.count,
                    "values": list(h.values),
                }
                for _k, h in sorted(self._histograms.items())
            ],
        }


    def compact_snapshot(self) -> Dict[str, list]:
        """Snapshot without raw histogram samples — piggyback-sized.

        Counters and gauges are exact; histograms carry only their
        count and running mean.  This is what shard workers attach to
        lockstep epoch replies (the heartbeat channel): a few hundred
        bytes instead of every raw sample.  :func:`merge_snapshots`
        folds these rows too (counts sum; the ``values`` list is simply
        absent, so merged percentiles are not available — by design,
        the end-of-run snapshot still carries the full samples).
        """
        snap = {
            "counters": [
                {"name": c.name, "labels": c.labels, "value": c.value}
                for _k, c in sorted(self._counters.items())
            ],
            "gauges": [
                {
                    "name": g.name,
                    "labels": g.labels,
                    "last": g.value,
                    "max": g.max_value,
                    "time_average": g.time_average(),
                }
                for _k, g in sorted(self._gauges.items())
            ],
            "histograms": [],
        }
        for _k, h in sorted(self._histograms.items()):
            n = h.count
            row = {"name": h.name, "labels": h.labels, "count": n}
            if n:
                row["mean"] = sum(h.values) / n
            snap["histograms"].append(row)
        return snap


def _merge_key(row: Dict) -> _LabelKey:
    return _label_key(row["name"], row["labels"])


def label_snapshot(snap: Optional[Dict], **labels) -> Optional[Dict]:
    """Copy of ``snap`` with extra labels stamped on every metric row.

    The sharded coordinator uses it to attach ``shard=<k>`` at merge
    time, so per-shard breakdowns survive :func:`merge_snapshots`
    instead of silently folding into one global row.  ``None`` passes
    through (a shard run without obs).
    """
    if not snap:
        return snap
    extra = {k: str(v) for k, v in labels.items()}
    out: Dict[str, list] = {}
    for section in ("counters", "gauges", "histograms"):
        rows = []
        for row in snap.get(section, ()):
            row = dict(row)
            merged = dict(row["labels"])
            merged.update(extra)
            row["labels"] = merged
            rows.append(row)
        out[section] = rows
    return out


def merge_snapshots(snapshots: Sequence[Optional[Dict]]) -> Dict[str, list]:
    """Fold registry snapshots together, in input order.

    Counters sum; histogram sample lists concatenate (so percentiles of
    the merge are exact); gauges keep the global peak, the last value
    seen, and the mean of per-source time-averages (sources don't carry
    enough to time-weight across runs — documented approximation).
    ``None`` entries (points run without obs) are skipped.

    Rows from :meth:`MetricsRegistry.compact_snapshot` (no ``values``
    list) merge too: counts sum, and the merged row carries a
    count-weighted ``mean`` instead of raw samples.  A merged histogram
    keeps its ``values`` only when *every* contributing row had them —
    percentiles of a partially-sampled merge would silently lie.
    """
    counters: Dict[_LabelKey, Dict] = {}
    gauges: Dict[_LabelKey, Dict] = {}
    histograms: Dict[_LabelKey, Dict] = {}
    gauge_sources: Dict[_LabelKey, List[float]] = {}
    hist_sums: Dict[_LabelKey, float] = {}
    hist_exact: Dict[_LabelKey, bool] = {}
    for snap in snapshots:
        if not snap:
            continue
        for row in snap.get("counters", ()):
            key = _merge_key(row)
            out = counters.get(key)
            if out is None:
                counters[key] = dict(row)
            else:
                out["value"] += row["value"]
        for row in snap.get("gauges", ()):
            key = _merge_key(row)
            out = gauges.get(key)
            if out is None:
                gauges[key] = dict(row)
                gauge_sources[key] = [row["time_average"]]
            else:
                out["max"] = max(out["max"], row["max"])
                out["last"] = row["last"]
                gauge_sources[key].append(row["time_average"])
        for row in snap.get("histograms", ()):
            key = _merge_key(row)
            vals = row.get("values")
            row_sum = (
                sum(vals) if vals is not None
                else row.get("mean", 0.0) * row["count"]
            )
            out = histograms.get(key)
            if out is None:
                out = histograms[key] = {
                    "name": row["name"],
                    "labels": row["labels"],
                    "count": row["count"],
                    "values": [] if vals is None else list(vals),
                }
                hist_exact[key] = vals is not None
                hist_sums[key] = row_sum
            else:
                out["count"] += row["count"]
                if vals is not None:
                    out["values"].extend(vals)
                else:
                    hist_exact[key] = False
                hist_sums[key] += row_sum
    for key, out in histograms.items():
        if not hist_exact[key]:
            out.pop("values", None)
            if out["count"]:
                out["mean"] = hist_sums[key] / out["count"]
    for key, averages in gauge_sources.items():
        gauges[key]["time_average"] = sum(averages) / len(averages)
    return {
        "counters": [counters[k] for k in sorted(counters)],
        "gauges": [gauges[k] for k in sorted(gauges)],
        "histograms": [histograms[k] for k in sorted(histograms)],
    }


def summarize_histogram(values: Iterable[float]) -> Dict[str, float]:
    """count/mean/p50/p95/p99/max of one (possibly merged) sample list."""
    ordered = sorted(values)
    out = {"count": float(len(ordered))}
    if ordered:
        out["mean"] = sum(ordered) / len(ordered)
        out["p50"] = percentile(ordered, 50)
        out["p95"] = percentile(ordered, 95)
        out["p99"] = percentile(ordered, 99)
        out["max"] = ordered[-1]
    return out
