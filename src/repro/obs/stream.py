"""Epoch-aligned live telemetry: the NDJSON heartbeat stream.

A multi-second sharded run used to emit *nothing* until the final
merge.  :class:`HeartbeatStream` is the coordinator-side sink for the
health rows shard workers piggyback on the lockstep epoch replies
(zero extra round trips — see ``repro.scale.shard._epoch_loop``): it
folds them into one heartbeat row per progress mark, writes the row as
one NDJSON line (``--obs-stream FILE|-``), and mirrors a human
progress line to stderr.

This stream is the feed the planned ``repro.orch`` closed-loop
controller (ROADMAP item 1) will consume: real cores drive scaling
decisions from continuously observed control-plane load, so the wire
format is machine-first — one JSON object per line, ``type`` tagged
(``heartbeat`` rows during the run, one ``summary`` row at the end).

Determinism: heartbeat *cadence* is a pure function of the run (epochs
are deterministic, marks are progress-fraction buckets), and every
simulation-derived field is bit-stable across runs.  Wall-clock fields
(``wall_s``, ``lag_s``, ``imbalance``) are measurement, not contract —
the golden test compares everything else.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..sim.monitor import imbalance
from .metrics import label_snapshot, merge_snapshots

__all__ = ["HeartbeatStream", "open_stream"]

#: heartbeat rows per run (progress-fraction buckets, not wall timers,
#: so the cadence is deterministic and machine-independent).
DEFAULT_MARKS = 16

#: epochs between heartbeats while draining past the traffic horizon.
DRAIN_EVERY = 512


class HeartbeatStream:
    """NDJSON sink for epoch-aligned shard health rows.

    ``fp`` is any text file object (stdout for ``--obs-stream -``), or
    ``None`` for a subscriber-only stream — the programmatic feed the
    ``repro.orch`` controller and tests consume without touching disk;
    ``progress`` mirrors a one-line human summary per heartbeat
    (stderr by default; None silences it).
    """

    #: drain-phase cadence (epochs between heartbeats) — read by the
    #: shard coordinator so the loop needs no import of this module.
    drain_every = DRAIN_EVERY

    def __init__(self, fp=None, progress=None, marks: int = DEFAULT_MARKS):
        self._fp = fp
        self._progress = progress
        self.marks = max(1, int(marks))
        self.rows = 0
        self._subscribers: List[Any] = []

    # -- programmatic consumers --------------------------------------------

    def subscribe(self, fn):
        """Register ``fn(row)`` for every emitted row; returns ``fn``.

        Subscribers see the identical dict that goes out as NDJSON
        (heartbeats and the final summary), in emission order.  They
        must treat the row as read-only: the dict is shared between the
        file sink and every subscriber.
        """
        self._subscribers.append(fn)
        return fn

    # -- raw emission -------------------------------------------------------

    def emit(self, row: Dict[str, Any]) -> None:
        if self._fp is not None:
            self._fp.write(json.dumps(row, sort_keys=True) + "\n")
            self._fp.flush()
        self.rows += 1
        for fn in self._subscribers:
            fn(row)

    # -- folded rows --------------------------------------------------------

    def heartbeat(
        self,
        epoch: int,
        t: float,
        duration: float,
        healths: Sequence[Dict[str, Any]],
    ) -> None:
        """Fold per-shard health rows into one heartbeat line."""
        sim_t = min(t, duration)
        walls = [h.get("wall_s", 0.0) for h in healths]
        metrics = merge_snapshots(
            [
                label_snapshot(h.get("metrics"), shard=h.get("shard", k))
                for k, h in enumerate(healths)
            ]
        ) if any(h.get("metrics") for h in healths) else None
        row: Dict[str, Any] = {
            "type": "heartbeat",
            "epoch": epoch,
            "t": sim_t,
            "progress": (sim_t / duration) if duration > 0 else 1.0,
            "draining": t > duration,
            "events": sum(h.get("events", 0) for h in healths),
            "heap": sum(h.get("heap", 0) for h in healths),
            "completed": sum(h.get("completed", 0) for h in healths),
            "migrations_out": sum(h.get("migrations_out", 0) for h in healths),
            "migrations_in": sum(h.get("migrations_in", 0) for h in healths),
            "serves": sum(h.get("serves", 0) for h in healths),
            "writes": sum(h.get("writes", 0) for h in healths),
            "violations": sum(h.get("violations", 0) for h in healths),
            "wall_s": max(walls) if walls else 0.0,
            "lag_s": (max(walls) - min(walls)) if walls else 0.0,
            "imbalance": imbalance(walls),
            # scalar per-shard rows only: the labeled metrics already
            # appear once, merged, under "metrics" — repeating them per
            # shard would double every heartbeat's size.  The orch
            # "load" table is likewise controller input, not wire
            # payload: the controller reads the raw health rows at its
            # tick, before they are folded into this heartbeat.
            "shards": [
                {k: v for k, v in h.items() if k not in ("metrics", "load")}
                for h in healths
            ],
        }
        if metrics is not None:
            row["metrics"] = metrics
        self.emit(row)
        if self._progress is not None:
            self._progress.write(
                "[obs-stream] t=%.3f/%.3fs%s epoch=%d completed=%d "
                "migrations=%d/%d violations=%d imbalance=%.2f\n"
                % (
                    sim_t,
                    duration,
                    " (drain)" if t > duration else "",
                    epoch,
                    row["completed"],
                    row["migrations_out"],
                    row["migrations_in"],
                    row["violations"],
                    row["imbalance"],
                )
            )
            self._progress.flush()

    def summary(self, result) -> None:
        """Final row: the merged :class:`ScaleResult` verdict."""
        self.emit(
            {
                "type": "summary",
                "scenario": result.scenario,
                "mode": result.mode,
                "n_ue": result.n_ue,
                "n_shards": result.n_shards,
                "duration_s": result.duration_s,
                "end_time_s": result.end_time_s,
                "completed": result.completed,
                "serves": result.serves,
                "writes": result.writes,
                "violations": result.violations,
                "ok": result.violations == 0,
                "digest": result.digest,
                "epochs": result.perf.get("epochs", 0),
                "wall_s": result.perf.get("wall_s", 0.0),
            }
        )


def open_stream(path: str, marks: int = DEFAULT_MARKS):
    """``--obs-stream`` helper: '-' means stdout; returns (stream, closer)."""
    if path == "-":
        return HeartbeatStream(sys.stdout, progress=sys.stderr, marks=marks), None
    fp = open(path, "w")
    return HeartbeatStream(fp, progress=sys.stderr, marks=marks), fp
