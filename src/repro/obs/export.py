"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON + text timelines.

The Chrome trace-event format (loadable by Perfetto's UI and
``chrome://tracing``) wants microsecond timestamps, integer pid/tid,
and ``"X"`` complete events with a duration.  We map:

* pid 1 = the whole simulated deployment (one metadata event names it);
* one tid per *procedure* (per root span), named after the root, so the
  UI draws each procedure as its own track with nested child slices;
* ``args`` = the span's attrs plus its ids, so a violation's
  ``trace_id``/``span_id`` can be searched in the UI.

Sharded runs use :func:`stitch_chrome_trace` instead: one pid per
shard (pid = shard + 1) and ``"s"``/``"f"`` flow events linking each
emigrating procedure's span to the destination shard's
``shard.install_migrated`` continuation.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .tracer import Span, Tracer, spans_from_rows

__all__ = [
    "chrome_trace_events",
    "stitch_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "timeline_summary",
]

_PID = 1


def _spans_of(tracer_or_spans) -> List[Span]:
    if isinstance(tracer_or_spans, Tracer):
        return list(tracer_or_spans.spans)
    return list(tracer_or_spans)


def _append_span_events(
    events: List[Dict[str, object]], spans: Sequence[Span], pid: int
) -> Dict[int, int]:
    """Emit metadata + ``"X"`` events for ``spans`` under ``pid``.

    Returns the root-id -> tid map so callers (the stitcher) can anchor
    flow events on a specific span's track.
    """
    tids: Dict[int, int] = {}
    for span in spans:
        tid = tids.get(span.root_id)
        if tid is None:
            tid = tids[span.root_id] = len(tids) + 1
        if span.parent_id is None:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "name": ("%s #%d %s" % (
                            span.name, span.root_id, span.attrs.get("ue", "")
                        )).strip()
                    },
                }
            )
        args = {"span_id": span.span_id, "trace_id": span.root_id,
                "status": span.status}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.attrs.items():
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        unfinished = span.end is None
        if unfinished:
            args["unfinished"] = True
        events.append(
            {
                "name": span.name,
                "cat": span.phase,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": 0.0 if unfinished else max(0.0, span.duration) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return tids


def chrome_trace_events(
    tracer_or_spans, process_name: str = "repro-sim"
) -> Dict[str, object]:
    """Spans -> a ``{"traceEvents": [...]}`` dict (Perfetto-loadable)."""
    spans = _spans_of(tracer_or_spans)
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    _append_span_events(events, spans, _PID)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def stitch_chrome_trace(
    shard_snapshots: Sequence[Dict[str, object]],
    process_name: str = "repro-sim",
) -> Dict[str, object]:
    """Per-shard obs snapshots -> one multi-process Chrome trace.

    Input is the ``obs`` entry of each shard's finish payload *in shard
    order*: span tables (``spans`` rows) plus the migration flow tables
    (``flows_out`` / ``flows_in``).  Shard ``k`` becomes pid ``k+1``
    with its own ``process_name`` metadata, so the Perfetto UI shows
    one process track group per shard.

    Cross-shard migrations become flow events: the emigrating
    procedure's root span (recorded by the source shard at emission
    time) links to the destination shard's ``shard.install_migrated``
    continuation span, matched by the trace-link id that rode on the
    obs channel next to the migration record.  Flow ids are assigned
    deterministically over the sorted link ids.
    """
    events: List[Dict[str, object]] = []
    span_tid: Dict[tuple, int] = {}  # (shard, span_id) -> tid
    flows_out: Dict[str, tuple] = {}  # link -> (shard, row)
    flows_in: Dict[str, tuple] = {}
    for k, snap in enumerate(shard_snapshots):
        pid = k + 1
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "%s shard %d" % (process_name, k)},
            }
        )
        if not snap:
            continue
        spans = spans_from_rows(snap.get("spans", ()))
        tids = _append_span_events(events, spans, pid)
        for span in spans:
            span_tid[(k, span.span_id)] = tids[span.root_id]
        for row in snap.get("flows_out", ()):
            flows_out[row["link"]] = (k, row)
        for row in snap.get("flows_in", ()):
            flows_in[row["link"]] = (k, row)
    flow_id = 0
    stitched = 0
    for link in sorted(set(flows_out) & set(flows_in)):
        src_shard, src = flows_out[link]
        dst_shard, dst = flows_in[link]
        src_tid = span_tid.get((src_shard, src.get("span")))
        dst_tid = span_tid.get((dst_shard, dst.get("span")))
        if src_tid is None or dst_tid is None:
            continue  # the anchoring span fell to bounded retention
        flow_id += 1
        stitched += 1
        common = {"name": "shard.migrate", "cat": "flow", "id": flow_id}
        events.append(
            dict(
                common,
                ph="s",
                pid=src_shard + 1,
                tid=src_tid,
                ts=src["t"] * 1e6,
                args={"ue": src.get("ue", ""), "link": link},
            )
        )
        events.append(
            dict(
                common,
                ph="f",
                bp="e",
                pid=dst_shard + 1,
                tid=dst_tid,
                ts=dst["t"] * 1e6,
                args={"ue": dst.get("ue", ""), "link": link},
            )
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "shards": len(shard_snapshots),
            "flow_events": stitched,
        },
    }


def write_chrome_trace(
    path: str, tracer_or_spans, process_name: str = "repro-sim"
) -> Dict[str, object]:
    """Write the Chrome trace JSON to ``path``; returns the dict."""
    data = chrome_trace_events(tracer_or_spans, process_name=process_name)
    with open(path, "w") as fp:
        json.dump(data, fp)
        fp.write("\n")
    return data


def validate_chrome_trace(data: Dict[str, object]) -> int:
    """Schema-check a trace dict; returns the event count or raises.

    Checks the invariants Perfetto's importer relies on: a
    ``traceEvents`` list, string names, known phases, numeric
    timestamps, integer pid/tid, and non-negative durations on ``"X"``
    events.  Used by the export tests and the ``obs`` CLI smoke step.
    """
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("trace must be a dict with a traceEvents list")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            raise ValueError(where + " is not an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(where + " has no name")
        if ev.get("ph") not in ("X", "B", "E", "M", "i", "C", "s", "t", "f"):
            raise ValueError(where + " has unknown phase %r" % (ev.get("ph"),))
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            raise ValueError(where + " pid/tid must be ints")
        if ev["ph"] == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
                raise ValueError(where + " X event needs numeric ts/dur")
            if dur < 0:
                raise ValueError(where + " has negative duration")
        elif ev["ph"] in ("s", "t", "f"):
            # flow events: Perfetto's importer needs a numeric ts and a
            # binding id shared by the start/finish pair
            if not isinstance(ev.get("ts"), (int, float)):
                raise ValueError(where + " flow event needs numeric ts")
            if "id" not in ev:
                raise ValueError(where + " flow event needs an id")
    return len(events)


def timeline_summary(
    tracer_or_spans, limit: int = 3, slowest: bool = True
) -> str:
    """Indented text timeline of the ``limit`` slowest (or first) roots."""
    spans = _spans_of(tracer_or_spans)
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    roots = children.get(None, [])
    if slowest:
        roots = sorted(roots, key=lambda s: -s.duration)
    roots = roots[:limit]

    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        lines.append(
            "%s%-28s %10.3f ms  [%s] %s"
            % (
                "  " * depth,
                span.name,
                span.duration * 1e3,
                span.phase,
                span.status,
            )
        )
        for child in sorted(
            children.get(span.span_id, ()), key=lambda s: (s.start, s.span_id)
        ):
            emit(child, depth + 1)

    for root in roots:
        lines.append(
            "-- trace %d: %s (t=%.6f s, %.3f ms) --"
            % (root.root_id, root.name, root.start, root.duration * 1e3)
        )
        emit(root, 0)
    if not roots:
        lines.append("(no spans recorded)")
    return "\n".join(lines)
