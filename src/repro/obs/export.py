"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON + text timelines.

The Chrome trace-event format (loadable by Perfetto's UI and
``chrome://tracing``) wants microsecond timestamps, integer pid/tid,
and ``"X"`` complete events with a duration.  We map:

* pid 1 = the whole simulated deployment (one metadata event names it);
* one tid per *procedure* (per root span), named after the root, so the
  UI draws each procedure as its own track with nested child slices;
* ``args`` = the span's attrs plus its ids, so a violation's
  ``trace_id``/``span_id`` can be searched in the UI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .tracer import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "timeline_summary",
]

_PID = 1


def _spans_of(tracer_or_spans) -> List[Span]:
    if isinstance(tracer_or_spans, Tracer):
        return list(tracer_or_spans.spans)
    return list(tracer_or_spans)


def chrome_trace_events(
    tracer_or_spans, process_name: str = "repro-sim"
) -> Dict[str, object]:
    """Spans -> a ``{"traceEvents": [...]}`` dict (Perfetto-loadable)."""
    spans = _spans_of(tracer_or_spans)
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    tids: Dict[int, int] = {}
    for span in spans:
        tid = tids.get(span.root_id)
        if tid is None:
            tid = tids[span.root_id] = len(tids) + 1
        if span.parent_id is None:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "args": {
                        "name": ("%s #%d %s" % (
                            span.name, span.root_id, span.attrs.get("ue", "")
                        )).strip()
                    },
                }
            )
        args = {"span_id": span.span_id, "trace_id": span.root_id,
                "status": span.status}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.attrs.items():
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        unfinished = span.end is None
        if unfinished:
            args["unfinished"] = True
        events.append(
            {
                "name": span.name,
                "cat": span.phase,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": 0.0 if unfinished else max(0.0, span.duration) * 1e6,
                "pid": _PID,
                "tid": tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, tracer_or_spans, process_name: str = "repro-sim"
) -> Dict[str, object]:
    """Write the Chrome trace JSON to ``path``; returns the dict."""
    data = chrome_trace_events(tracer_or_spans, process_name=process_name)
    with open(path, "w") as fp:
        json.dump(data, fp)
        fp.write("\n")
    return data


def validate_chrome_trace(data: Dict[str, object]) -> int:
    """Schema-check a trace dict; returns the event count or raises.

    Checks the invariants Perfetto's importer relies on: a
    ``traceEvents`` list, string names, known phases, numeric
    timestamps, integer pid/tid, and non-negative durations on ``"X"``
    events.  Used by the export tests and the ``obs`` CLI smoke step.
    """
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("trace must be a dict with a traceEvents list")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            raise ValueError(where + " is not an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(where + " has no name")
        if ev.get("ph") not in ("X", "B", "E", "M", "i", "C"):
            raise ValueError(where + " has unknown phase %r" % (ev.get("ph"),))
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            raise ValueError(where + " pid/tid must be ints")
        if ev["ph"] == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
                raise ValueError(where + " X event needs numeric ts/dur")
            if dur < 0:
                raise ValueError(where + " has negative duration")
    return len(events)


def timeline_summary(
    tracer_or_spans, limit: int = 3, slowest: bool = True
) -> str:
    """Indented text timeline of the ``limit`` slowest (or first) roots."""
    spans = _spans_of(tracer_or_spans)
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    roots = children.get(None, [])
    if slowest:
        roots = sorted(roots, key=lambda s: -s.duration)
    roots = roots[:limit]

    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        lines.append(
            "%s%-28s %10.3f ms  [%s] %s"
            % (
                "  " * depth,
                span.name,
                span.duration * 1e3,
                span.phase,
                span.status,
            )
        )
        for child in sorted(
            children.get(span.span_id, ()), key=lambda s: (s.start, s.span_id)
        ):
            emit(child, depth + 1)

    for root in roots:
        lines.append(
            "-- trace %d: %s (t=%.6f s, %.3f ms) --"
            % (root.root_id, root.name, root.start, root.duration * 1e3)
        )
        emit(root, 0)
    if not roots:
        lines.append("(no spans recorded)")
    return "\n".join(lines)
