"""Command-line interface: regenerate the paper's figures and ablations.

Usage::

    python -m repro list
    python -m repro figure fig08            # default (benchmark) scale
    python -m repro figure fig18 --full     # paper-scale sweep
    python -m repro figure fig07 --jobs 8   # fan points out over 8 workers
    python -m repro figure fig07 --smoke    # tiny spec (CI smoke runs)
    python -m repro sweep --configs neutrino,existing_epc \\
        --procedure attach --rates 20e3,40e3,60e3 --jobs 4
    python -m repro ablation georep_level
    python -m repro trace --devices 200 --duration 30 out.jsonl
    python -m repro chaos replay schedule.json    # bit-for-bit replay
    python -m repro chaos example schedule.json   # write a sample plan
    python -m repro profile fig08 --top 20        # cProfile a figure run
    python -m repro obs fig07                     # traced run + breakdown
    python -m repro obs fig07 --timeline          # + slowest-procedure trees
    python -m repro orch upgrade-under-commute-wave --shards 4
    python -m repro orch autoscale-under-flash-crowd --compare-baseline

Figure ids follow the paper's numbering (fig03, fig07-fig11, fig13-fig20).

Sweep-backed subcommands (``figure`` on PCT figures, ``sweep``, the
``n_backups`` ablation) accept ``--jobs N`` (worker processes; 0 = one
per core), ``--cache-dir PATH`` (content-addressed result cache,
default ``.repro-cache/``), and ``--no-cache``.  Cached reruns perform
zero simulation work; the footer line reports hits/misses/stale.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from .experiments import RunSpec, figures
from .experiments.ablations import (
    ablate_ack_timeout,
    ablate_georep_level,
    ablate_n_backups,
    ablate_serialization_bandwidth,
)
from .experiments.cache import DEFAULT_CACHE_DIR, ResultCache
from .experiments.harness import PCTPoint
from .experiments.parallel import SweepReport, run_sweep
from .experiments.report import format_dict_rows, format_pct_table, format_run_footer

__all__ = ["main"]


def _quick_spec(**overrides) -> RunSpec:
    base = dict(procedures_target=600, min_duration_s=0.03, max_duration_s=0.15)
    base.update(overrides)
    return RunSpec(**base)


def _smoke_spec(**overrides) -> RunSpec:
    """Tiny spec for CI smoke runs: shape only, seconds not minutes."""
    base = dict(procedures_target=150, min_duration_s=0.02, max_duration_s=0.06)
    base.update(overrides)
    return RunSpec(**base)


def _emit(result, title: str) -> None:
    if result and isinstance(result[0], PCTPoint):
        print(format_pct_table(result, title))
    else:
        print(format_dict_rows(result, title))


_QUICK_RATES = {
    "fig03": (180e3, 240e3, 300e3),
    "fig07": (100e3, 140e3, 180e3, 220e3),
    "fig08": (40e3, 60e3, 80e3, 100e3, 120e3, 140e3),
    "fig10": (40e3, 60e3, 100e3),
    "fig11": (40e3, 60e3, 100e3),
    "fig15": (20e3, 60e3, 100e3),
    "fig16": (20e3, 60e3, 100e3),
}

#: the figures whose points run through the parallel/cached sweep runner.
_SWEEP_FIGURES = frozenset(
    ("fig07", "fig08", "fig09", "fig10", "fig11", "fig15", "fig16", "fig17")
)


def _run_figure(fig: str, full: bool, jobs: int = 1, cache=None, smoke: bool = False) -> None:
    quick = not full

    def rates(default):
        chosen = _QUICK_RATES.get(fig, default) if quick else default
        return chosen[::2] if smoke else chosen  # smoke: every other rate

    def spec(procedure):
        if smoke:
            return _smoke_spec(procedure=procedure)
        return _quick_spec(procedure=procedure) if quick else None

    if fig == "fig03":
        _emit(figures.fig03_plt_and_video(rates=rates((180e3, 200e3, 220e3, 240e3, 260e3, 280e3, 300e3))), "Fig. 3")
    elif fig == "fig07":
        _emit(
            figures.fig07_service_request(
                rates=rates(figures.DEFAULT_FIG07_RATES),
                spec=spec("service_request"),
                jobs=jobs,
                cache=cache,
            ),
            "Fig. 7 — service request PCT (median ms)",
        )
    elif fig == "fig08":
        _emit(
            figures.fig08_attach_uniform(
                rates=rates(figures.DEFAULT_FIG08_RATES),
                spec=spec("attach"),
                jobs=jobs,
                cache=cache,
            ),
            "Fig. 8 — attach PCT (median ms)",
        )
    elif fig == "fig09":
        users = (10e3, 100e3, 500e3, 2e6) if quick else figures.DEFAULT_FIG09_USERS
        if smoke:
            users = (10e3, 100e3)
        _emit(
            figures.fig09_attach_bursty(users=users, jobs=jobs, cache=cache),
            "Fig. 9 — bursty attach PCT",
        )
    elif fig == "fig10":
        _emit(
            figures.fig10_failure_handover(
                rates=rates((40e3, 60e3, 80e3, 100e3, 120e3, 140e3, 160e3)),
                jobs=jobs,
                cache=cache,
            ),
            "Fig. 10 — handover PCT under failure",
        )
    elif fig == "fig11":
        _emit(
            figures.fig11_fast_handover(
                rates=rates((40e3, 60e3, 80e3, 100e3, 120e3, 140e3, 160e3)),
                jobs=jobs,
                cache=cache,
            ),
            "Fig. 11 — fast handover PCT",
        )
    elif fig == "fig13":
        _emit(figures.fig13_self_driving(), "Fig. 13 — self-driving missed deadlines")
    elif fig == "fig14":
        _emit(figures.fig14_vr(), "Fig. 14 — VR missed deadlines")
    elif fig == "fig15":
        _emit(
            figures.fig15_sync_schemes(
                rates=rates((20e3, 40e3, 60e3, 80e3, 100e3)),
                spec=spec("attach"),
                jobs=jobs,
                cache=cache,
            ),
            "Fig. 15 — sync schemes",
        )
    elif fig == "fig16":
        _emit(
            figures.fig16_logging_overhead(
                rates=rates((20e3, 40e3, 60e3, 80e3, 100e3, 120e3, 140e3)),
                spec=spec("attach"),
                jobs=jobs,
                cache=cache,
            ),
            "Fig. 16 — logging overhead",
        )
    elif fig == "fig17":
        users = (10e3, 50e3) if smoke else (10e3, 50e3, 100e3, 200e3)
        _emit(
            figures.fig17_log_size(users=users, jobs=jobs, cache=cache),
            "Fig. 17 — max CTA log size",
        )
    elif fig == "fig18":
        _emit(
            figures.fig18_codec_speedup(measured_repeats=0 if quick else 200),
            "Fig. 18 — codec speedup vs ASN.1",
        )
    elif fig == "fig19":
        _emit(
            figures.fig19_real_message_times(measured_repeats=0 if quick else 200),
            "Fig. 19 — real message times (µs)",
        )
    elif fig == "fig20":
        _emit(figures.fig20_encoded_sizes(), "Fig. 20 — encoded sizes (bytes)")
    else:
        raise SystemExit("unknown figure %r (try: python -m repro list)" % fig)


#: ablations are (runner, uses_sweep_runner); only sweep-backed ones
#: honour --jobs / the cache (the rest drive one deployment directly).
_ABLATIONS: Dict[str, Callable] = {
    "n_backups": lambda jobs, cache: ablate_n_backups(jobs=jobs, cache=cache),
    "georep_level": lambda jobs, cache: ablate_georep_level(),
    "ack_timeout": lambda jobs, cache: ablate_ack_timeout(),
    "serialization_bandwidth": lambda jobs, cache: ablate_serialization_bandwidth(),
}

#: presets selectable by name in ``python -m repro sweep --configs``.
_SWEEP_CONFIGS = ("neutrino", "existing_epc", "skycore", "dpcm")

_FIGURES = [
    "fig03", "fig07", "fig08", "fig09", "fig10", "fig11",
    "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
]

#: ``python -m repro obs`` figure points: one representative rate per
#: PCT figure, run per-scheme with tracing on.  Cases are
#: (label, config factory kwargs tuple, procedure, spec overrides).
_OBS_FIGURES: Dict[str, dict] = {
    "fig07": dict(
        rate=140e3,
        cases=[
            ("existing_epc", ("existing_epc", {}), "service_request", {}),
            ("dpcm", ("dpcm", {}), "service_request", {}),
            ("skycore", ("skycore", {}), "service_request", {}),
            ("neutrino", ("neutrino", {}), "service_request", {}),
        ],
    ),
    "fig08": dict(
        rate=80e3,
        cases=[
            ("existing_epc", ("existing_epc", {}), "attach", {}),
            ("neutrino", ("neutrino", {}), "attach", {}),
        ],
    ),
    "fig10": dict(
        rate=60e3,
        cases=[
            (
                label,
                (label, {}),
                "handover",
                dict(
                    cpfs_per_region=2,
                    failure_cpf_index=0,
                    failure_at_frac=0.5,
                    first_region_only=True,
                ),
            )
            for label in ("existing_epc", "neutrino")
        ],
    ),
    "fig11": dict(
        rate=60e3,
        cases=[
            (
                "existing_epc", ("existing_epc", {}), "handover",
                dict(first_region_only=True),
            ),
            (
                "neutrino_default",
                ("neutrino", dict(name="neutrino_default", proactive_georep=False)),
                "handover",
                dict(first_region_only=True),
            ),
            (
                "neutrino_proactive",
                ("neutrino", dict(name="neutrino_proactive")),
                "fast_handover",
                dict(first_region_only=True),
            ),
        ],
    ),
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Neutrino reproduction: regenerate the paper's figures.",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available figures and ablations")

    def add_runner_flags(p):
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for sweep points (0 = one per core)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="always re-simulate, never read or write the result cache",
        )
        p.add_argument(
            "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="PATH",
            help="result cache directory (default: %(default)s)",
        )

    fig_parser = sub.add_parser("figure", help="regenerate one figure")
    fig_parser.add_argument("id", choices=_FIGURES)
    fig_parser.add_argument(
        "--full", action="store_true", help="paper-scale sweep (slower)"
    )
    fig_parser.add_argument(
        "--smoke", action="store_true",
        help="tiny reduced spec (CI smoke; overrides --full)",
    )
    add_runner_flags(fig_parser)

    abl_parser = sub.add_parser("ablation", help="run one extra ablation")
    abl_parser.add_argument("id", choices=sorted(_ABLATIONS))
    add_runner_flags(abl_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="ad-hoc custom sweep over configs x rates"
    )
    sweep_parser.add_argument(
        "--configs", default="neutrino,existing_epc", metavar="A,B",
        help="comma-separated presets from: %s" % ",".join(_SWEEP_CONFIGS),
    )
    sweep_parser.add_argument(
        "--procedure", default="attach",
        help="procedure to sweep (attach, service_request, handover, ...)",
    )
    sweep_parser.add_argument(
        "--rates", default="20e3,40e3,60e3,80e3", metavar="R1,R2",
        help="comma-separated system-wide procedures/s (paper axis)",
    )
    sweep_parser.add_argument("--seed", type=int, default=1)
    sweep_parser.add_argument(
        "--procedures-target", type=int, default=600, metavar="N",
        help="procedures per measurement point",
    )
    sweep_parser.add_argument("--regions", type=int, default=2)
    sweep_parser.add_argument("--cpfs-per-region", type=int, default=1)
    add_runner_flags(sweep_parser)

    prof_parser = sub.add_parser(
        "profile",
        help="run one figure under cProfile and report the top-N hot functions",
        description=(
            "Profile a figure regeneration. The run is always serial and "
            "uncached: cProfile cannot see into worker processes, and a "
            "cache hit would profile zero simulation work."
        ),
    )
    prof_parser.add_argument("id", choices=_FIGURES)
    prof_parser.add_argument(
        "--top", type=int, default=25, metavar="N",
        help="how many functions to report (default: %(default)s)",
    )
    prof_parser.add_argument(
        "--sort", default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key (default: %(default)s)",
    )
    prof_parser.add_argument(
        "--full", action="store_true", help="paper-scale sweep (slower)"
    )
    prof_parser.add_argument(
        "--smoke", action="store_true",
        help="tiny reduced spec (fast profile; overrides --full)",
    )
    prof_parser.add_argument(
        "--output", metavar="FILE",
        help="also dump raw pstats data to FILE (for snakeviz etc.)",
    )

    obs_parser = sub.add_parser(
        "obs",
        help="run one traced figure point; export Perfetto JSON + breakdown",
        description=(
            "Run one representative measurement point per scheme of a PCT "
            "figure with tracing enabled, write a Chrome/Perfetto "
            "trace_event JSON per scheme plus a merged metrics snapshot, "
            "and print the per-phase latency breakdown."
        ),
    )
    obs_parser.add_argument("id", choices=sorted(_OBS_FIGURES))
    obs_parser.add_argument(
        "--rate", type=float, default=None, metavar="R",
        help="override the point's system-wide procedures/s",
    )
    obs_parser.add_argument(
        "--out", default="obs-out", metavar="DIR",
        help="output directory for trace/metrics files (default: %(default)s)",
    )
    obs_parser.add_argument(
        "--smoke", action="store_true",
        help="tiny reduced spec (CI smoke runs)",
    )
    obs_parser.add_argument(
        "--timeline", action="store_true",
        help="also print the slowest procedures' span trees",
    )

    from .scale.scenarios import scenario_names

    def add_scale_flags(p, seeds=True):
        p.add_argument("scenario", choices=scenario_names())
        p.add_argument(
            "--n-ue", type=int, default=None, metavar="N",
            help="population size (default: the scenario's, typically 20000)",
        )
        p.add_argument(
            "--duration", type=float, default=None, metavar="SECONDS",
            help="simulated duration (fault/churn phases scale with it)",
        )
        p.add_argument("--seed", type=int, default=None)
        if seeds:
            p.add_argument(
                "--seeds", default=None, metavar="S1,S2",
                help="replicate sweep over comma-separated seeds "
                "(runs through the parallel runner + result cache)",
            )
        p.add_argument(
            "--mode", choices=["cohort", "individual", "batched"],
            default="cohort",
            help="population model (individual = N persistent UE objects, "
            "the conformance witness; batched = analytic steady-state lane, "
            "same results faster; default: %(default)s)",
        )
        p.add_argument(
            "--shards", default="1", metavar="N|auto",
            help="partition the city by level-2 region across N worker "
            "processes (auto = one per core; default: %(default)s). The "
            "merged run is deterministic for a fixed shard count.",
        )
        p.add_argument(
            "--shard-backend", choices=["auto", "inline", "process"],
            default="auto",
            help="shard execution vehicle: process = one worker per shard, "
            "inline = same engines serially in-process (bit-identical "
            "results; the CI witness path), auto = processes when multiple "
            "cores are available (default: %(default)s)",
        )
        p.add_argument(
            "--obs", nargs="?", const="metrics", default=None,
            choices=["metrics", "trace"],
            help="install observability (bare --obs = bounded metrics mode; "
            "trace mode on sharded runs stitches one Chrome/Perfetto trace "
            "with per-shard process tracks and cross-shard flow events)",
        )
        p.add_argument(
            "--obs-stream", default=None, metavar="FILE|-",
            help="write the epoch-aligned NDJSON heartbeat stream here "
            "('-' = stdout); heartbeats piggyback on the lockstep epoch "
            "messages of sharded runs — zero extra round trips",
        )
        p.add_argument(
            "--span-keep", type=int, default=None, metavar="K",
            help="bounded span retention for --obs trace: keep the slowest "
            "K roots per procedure plus every fault/recovery/migration "
            "tree (default: unbounded single-process, 32 sharded)",
        )
        p.add_argument(
            "--trace-out", default=None, metavar="FILE",
            help="Chrome/Perfetto trace output path for --obs trace "
            "(default: scale-<scenario>.trace.json)",
        )
        p.add_argument(
            "--ledger", default=None, metavar="FILE",
            help="write the structured end-of-run ledger (JSON, schema "
            "repro.run_ledger/v1: config + code fingerprints, per-shard "
            "perf/health, latency quantiles, auditor verdict)",
        )
        p.add_argument(
            "--verbose-trace", action="store_true",
            help="record every message in the event trace (digest witness; "
            "unbounded — small populations only)",
        )
        p.add_argument(
            "--json", action="store_true", help="emit the result as JSON"
        )
        add_runner_flags(p)

    scale_parser = sub.add_parser(
        "scale",
        help="run a city-scale sharded deployment scenario",
        description=(
            "Instantiate a geo-hash-tile city (K CTAs x M level-2 regions), "
            "drive mobility-model traffic over an aggregated-UE cohort, and "
            "report per-region latency percentiles plus the RYW audit. "
            "Scenarios: steady-city, commute-wave, stadium-flash-crowd, "
            "region-failover, ring-churn, plus the measured-model signaling "
            "storms iot-reattach-storm, paging-storm, midnight-tau-spike."
        ),
    )
    add_scale_flags(scale_parser)
    scale_parser.set_defaults(policy=None, compare_baseline=False)

    orch_parser = sub.add_parser(
        "orch",
        help="run a scale scenario under the closed-loop controller",
        description=(
            "Run a city-scale scenario with the repro.orch closed-loop "
            "controller driving day-2 operations off the epoch-aligned "
            "heartbeat feed: CPF scale-out/scale-in on queue hysteresis, "
            "rolling CPF upgrades (drain -> migrate state -> replace), and "
            "auto-heal racing the paper's two-level recovery.  The policy "
            "comes from --policy (JSON, inline or a file) or the "
            "scenario's built-in one (upgrade-under-commute-wave, "
            "autoscale-under-flash-crowd).  The exit code is still the "
            "auditor verdict — orchestration never trades consistency "
            "for capacity — and every run is bit-reproducible for a "
            "fixed (policy, seed, shard count)."
        ),
    )
    add_scale_flags(orch_parser, seeds=False)
    orch_parser.add_argument(
        "--policy", default=None, metavar="FILE|JSON",
        help="orchestration policy (repro.orch.OrchPolicy DSL): a JSON "
        "object inline or a path to a JSON file; default: the "
        "scenario's built-in policy",
    )
    orch_parser.add_argument(
        "--compare-baseline", action="store_true",
        help="also run the identical scenario with the controller off "
        "(fixed capacity) and record both worst-region attach p99s, "
        "plus the verdict, under the ledger's orch.compare section",
    )
    orch_parser.set_defaults(seeds=None)

    cal_parser = sub.add_parser(
        "calibrate",
        help="statistically calibrate a measured traffic model",
        description=(
            "Replay a traffic model's generators on a pinned seed and run "
            "every goodness-of-fit check its claims admit (KS on "
            "inter-arrivals per device class and procedure, diurnal "
            "rate-envelope checks, storm size/intensity/shape). Exit 0 iff "
            "every check passes — the same suite CI runs in "
            "tests/traffic/test_calibration.py."
        ),
    )
    from .traffic.models import model_names

    cal_parser.add_argument("model", choices=model_names())
    cal_parser.add_argument(
        "--n-ue", type=int, default=20000, metavar="N",
        help="population the aggregate processes scale to (default: %(default)s)",
    )
    cal_parser.add_argument(
        "--duration", type=float, default=600.0, metavar="SECONDS",
        help="emitted stream length (default: %(default)s)",
    )
    cal_parser.add_argument("--seed", type=int, default=1)
    cal_parser.add_argument(
        "--rate-scale", type=float, default=1.0, metavar="X",
        help="rate multiplier, as ScenarioSpec.traffic_rate_scale",
    )
    cal_parser.add_argument(
        "--alpha", type=float, default=None, metavar="P",
        help="significance level (default: calibration.DEFAULT_ALPHA)",
    )

    trace_parser = sub.add_parser("trace", help="generate a synthetic trace")
    trace_parser.add_argument("output")
    trace_parser.add_argument("--devices", type=int, default=100)
    trace_parser.add_argument("--duration", type=float, default=60.0)
    trace_parser.add_argument("--seed", type=int, default=0)

    chaos_parser = sub.add_parser(
        "chaos", help="deterministic fault-injection schedules"
    )
    chaos_sub = chaos_parser.add_subparsers(dest="chaos_command")
    replay_parser = chaos_sub.add_parser(
        "replay", help="run a saved FaultPlan twice and verify bit-for-bit replay"
    )
    replay_parser.add_argument("plan", help="FaultPlan JSON file")
    replay_parser.add_argument(
        "--runs", type=int, default=2, help="replay count (default 2)"
    )
    replay_parser.add_argument(
        "--show-trace", action="store_true", help="print the recorded event trace"
    )
    replay_parser.add_argument(
        "--obs", action="store_true",
        help="run with tracing installed so violations carry span ids "
        "(the digest check proves tracing changed nothing)",
    )
    example_parser = chaos_sub.add_parser(
        "example", help="write a sample chaos FaultPlan to a JSON file"
    )
    example_parser.add_argument("output")
    example_parser.add_argument("--seed", type=int, default=7)

    args = parser.parse_args(argv)
    if args.command == "list":
        from .traffic.models import model_names as _model_names

        print("figures  :", " ".join(_FIGURES))
        print("ablations:", " ".join(sorted(_ABLATIONS)))
        print("sweep    : custom config x rate sweeps (see sweep --help)")
        print("scenarios:", " ".join(scenario_names()))
        print("models   :", " ".join(_model_names()))
        return 0
    if args.command == "figure":
        cache = _make_cache(args) if args.id in _SWEEP_FIGURES else None
        _run_figure(args.id, args.full, jobs=args.jobs, cache=cache, smoke=args.smoke)
        if cache is not None:
            print(format_run_footer(cache=cache))
        return 0
    if args.command == "ablation":
        cache = _make_cache(args) if args.id == "n_backups" else None
        _emit(_ABLATIONS[args.id](args.jobs, cache), "Ablation — %s" % args.id)
        if cache is not None:
            print(format_run_footer(cache=cache))
        return 0
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "sweep":
        return _run_sweep_command(args)
    if args.command == "trace":
        from .traffic import TraceConfig, generate_trace, save_trace

        config = TraceConfig(
            n_devices=args.devices, duration_s=args.duration, seed=args.seed
        )
        records = generate_trace(config)
        with open(args.output, "w") as fp:
            count = save_trace(records, fp)
        print("wrote %d records to %s" % (count, args.output))
        return 0
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "scale":
        return _run_scale(args)
    if args.command == "orch":
        return _run_orch(args)
    if args.command == "calibrate":
        return _run_calibrate(args)
    parser.print_help()
    return 1


def _make_cache(args):
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _run_calibrate(args) -> int:
    from .traffic.calibration import DEFAULT_ALPHA, calibrate_model
    from .traffic.models import get_model

    alpha = DEFAULT_ALPHA if args.alpha is None else args.alpha
    report = calibrate_model(
        get_model(args.model),
        n_ue=args.n_ue,
        duration_s=args.duration,
        seed=args.seed,
        alpha=alpha,
        rate_scale=args.rate_scale,
    )
    print(report.format_report())
    return 0 if report.ok else 1


def _run_orch(args) -> int:
    """``python -m repro orch``: a scale run under the closed-loop
    controller.  Resolves the policy (--policy JSON/file or the
    scenario's built-in one), validates it eagerly for a readable
    error, then delegates to the scale runner with the spec override —
    the exit code stays the auditor verdict."""
    import json as json_mod
    import os
    import sys
    from dataclasses import replace as dc_replace

    from .orch import OrchPolicy
    from .scale.scenarios import get_scenario

    spec = get_scenario(args.scenario)
    policy_data = spec.orch_policy
    if args.policy:
        text = args.policy
        if os.path.exists(text):
            with open(text) as fp:
                text = fp.read()
        try:
            policy_data = json_mod.loads(text)
        except ValueError as err:
            print(
                "error: --policy is neither a file nor valid JSON: %s"
                % err, file=sys.stderr,
            )
            return 2
    if policy_data is None:
        print(
            "error: scenario %r has no built-in orchestration policy; "
            "pass one with --policy (JSON object or file)"
            % args.scenario, file=sys.stderr,
        )
        return 2
    try:
        OrchPolicy.from_dict(policy_data)
    except (TypeError, ValueError) as err:
        print("error: bad --policy: %s" % err, file=sys.stderr)
        return 2
    args._spec = dc_replace(spec, orch_policy=dict(policy_data))
    return _run_scale(args)


def _run_scale(args) -> int:
    import json as json_mod
    import sys

    from .scale import ScaleResult, run_replicates, run_scenario

    if args.shards == "auto":
        shards = 0  # run_sharded resolves to one per core
    else:
        try:
            shards = int(args.shards)
        except ValueError:
            print(
                "error: --shards takes an integer or 'auto', got %r"
                % args.shards, file=sys.stderr,
            )
            return 2
    if shards != 1:
        # reject combinations the sharded coordinator cannot honour,
        # loudly, before any simulation work starts
        if args.seeds:
            print(
                "error: --shards and --seeds are incompatible (the "
                "replicate sweep parallelises over seeds; run one seed "
                "per invocation when sharding)", file=sys.stderr,
            )
            return 2
        if args.mode == "individual":
            print(
                "error: --shards requires --mode cohort or batched "
                "(the individual conformance driver is single-process "
                "by design)", file=sys.stderr,
            )
            return 2
    if args.seeds and (args.obs_stream or args.ledger or args.trace_out):
        print(
            "error: --obs-stream/--ledger/--trace-out describe one run; "
            "they are incompatible with the --seeds replicate sweep",
            file=sys.stderr,
        )
        return 2

    if args.seeds:
        seeds = [int(s) for s in args.seeds.split(",") if s]
        cache = None
        if not args.no_cache:
            cache = ResultCache(args.cache_dir, decode=ScaleResult.from_dict)
        report = SweepReport()
        results = run_replicates(
            args.scenario,
            seeds,
            n_ue=args.n_ue,
            duration_s=args.duration,
            mode=args.mode,
            jobs=args.jobs,
            cache=cache,
            report=report,
        )
        if args.json:
            print(json_mod.dumps(
                [r.to_dict() for r in results], indent=2, sort_keys=True
            ))
        else:
            for result in results:
                print(result.format_report())
                print()
        violations = sum(r.violations for r in results)
        print(
            "replicates=%d violations=%d digests=%s"
            % (len(results), violations, ",".join(r.digest for r in results))
        )
        print(format_run_footer(report=report, cache=cache))
        return 0 if violations == 0 else 1

    obs = None
    if args.obs is not None:
        from .obs import Observability

        obs = Observability(args.obs, span_keep=args.span_keep)
    stream = closer = None
    if args.obs_stream:
        from .obs.stream import open_stream

        stream, closer = open_stream(args.obs_stream)
    scenario = getattr(args, "_spec", None)
    if scenario is None:
        scenario = args.scenario
    try:
        result = run_scenario(
            scenario,
            n_ue=args.n_ue,
            duration_s=args.duration,
            seed=args.seed,
            mode=args.mode,
            obs=obs,
            stream=stream,
            verbose_trace=args.verbose_trace,
            shards=shards,
            shard_backend=args.shard_backend,
        )
    except ValueError as err:
        # e.g. more shards than level-2 regions
        print("error: %s" % err, file=sys.stderr)
        return 2
    finally:
        if closer is not None:
            closer.close()

    if args.compare_baseline:
        # same scenario, controller off: the fixed-capacity control run
        # whose worst-region attach p99 the orchestrated one must beat
        from dataclasses import replace as dc_replace

        from .orch import orch_compare
        from .scale.scenarios import get_scenario

        spec = getattr(args, "_spec", None) or get_scenario(args.scenario)
        base_spec = dc_replace(spec, orch_policy=None)
        baseline = run_scenario(
            base_spec,
            n_ue=args.n_ue,
            duration_s=args.duration,
            seed=args.seed,
            mode=args.mode,
            shards=shards,
            shard_backend=args.shard_backend,
        )
        result.orch_compare = orch_compare(result, baseline)

    trace_path = None
    flow_events = None
    if args.obs == "trace":
        from .obs.export import (
            chrome_trace_events,
            stitch_chrome_trace,
            validate_chrome_trace,
        )

        trace_path = args.trace_out or "scale-%s.trace.json" % args.scenario
        obs_shards = getattr(result, "obs_shards", None)
        if obs_shards is not None:
            data = stitch_chrome_trace(obs_shards)
            flow_events = data["metadata"]["flow_events"]
        else:
            data = chrome_trace_events(obs.tracer)
        validate_chrome_trace(data)
        with open(trace_path, "w") as fp:
            json_mod.dump(data, fp)
            fp.write("\n")
    if args.ledger:
        from .obs.ledger import write_run_ledger

        write_run_ledger(
            args.ledger,
            result,
            argv=sys.argv[1:],
            stream_path=args.obs_stream,
            trace_path=trace_path,
        )

    if args.json:
        payload = result.to_dict()
        for attr in ("orch_policy", "orch_log", "orch_summary",
                     "orch_compare"):
            value = getattr(result, attr, None)
            if value is not None:
                payload[attr] = value
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.format_report())
        orch_summary = getattr(result, "orch_summary", None)
        if orch_summary is not None:
            kinds = orch_summary.get("by_kind", {})
            print(
                "orch: ticks=%d actions=%d%s heartbeats=%d"
                % (
                    orch_summary.get("ticks", 0),
                    orch_summary.get("actions", 0),
                    " (%s)" % ", ".join(
                        "%s=%d" % (k, v) for k, v in sorted(kinds.items())
                    ) if kinds else "",
                    orch_summary.get("heartbeats_seen", 0),
                )
            )
        compare = getattr(result, "orch_compare", None)
        if compare is not None:
            print(
                "orch-compare: attach p99 worst-region %.3fms orchestrated "
                "vs %.3fms fixed-capacity -> %s (baseline violations=%d)"
                % (
                    compare["orch_attach_p99_ms"],
                    compare["baseline_attach_p99_ms"],
                    "improved" if compare["improved"] else "NOT improved",
                    compare["baseline_violations"],
                )
            )
    snapshot = getattr(result, "obs_snapshot", None)
    if snapshot is None and obs is not None and obs.metrics is not None:
        snapshot = obs.snapshot()
    if snapshot is not None:
        counters = (snapshot.get("metrics") or {}).get("counters", [])
        hop_messages = sum(
            c["value"] for c in counters if c["name"] == "hop_messages"
        )
        print(
            "obs: spans=%s/%s hop_messages=%d (mode=%s)"
            % (
                snapshot["spans_started"],
                snapshot["spans_finished"],
                hop_messages,
                args.obs,
            )
        )
    if trace_path is not None:
        line = "trace: wrote %s" % trace_path
        if flow_events is not None:
            line += " (%d shard tracks, %d cross-shard flow events)" % (
                result.n_shards, flow_events,
            )
        print(line)
    if args.ledger:
        print("ledger: wrote %s" % args.ledger)
    # the exit code is the merged auditor verdict across every shard
    return 0 if result.violations == 0 else 1


def _run_profile(args) -> int:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        _run_figure(args.id, args.full, jobs=1, cache=None, smoke=args.smoke)
    finally:
        profiler.disable()
    if args.output:
        profiler.dump_stats(args.output)
        print("wrote raw profile data to %s" % args.output)
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort)
    print()
    print("== %s: top %d functions by %s ==" % (args.id, args.top, args.sort))
    stats.print_stats(args.top)
    return 0


def _run_sweep_command(args) -> int:
    from .core.config import ControlPlaneConfig

    presets = {name: getattr(ControlPlaneConfig, name) for name in _SWEEP_CONFIGS}
    configs = []
    for name in args.configs.split(","):
        name = name.strip()
        if name not in presets:
            print("unknown config %r (choose from: %s)" % (name, ", ".join(_SWEEP_CONFIGS)))
            return 1
        configs.append(presets[name]())
    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print("bad --rates %r (want comma-separated numbers, e.g. 20e3,40e3)" % args.rates)
        return 1
    if not rates:
        print("no rates given")
        return 1
    spec = RunSpec(
        procedure=args.procedure,
        seed=args.seed,
        procedures_target=args.procedures_target,
        regions=args.regions,
        cpfs_per_region=args.cpfs_per_region,
    )
    cache = _make_cache(args)
    report = SweepReport()
    grouped = run_sweep(configs, rates, spec, jobs=args.jobs, cache=cache, report=report)
    points = [p for series in grouped.values() for p in series]
    print(format_pct_table(points, "Sweep — %s" % args.procedure))
    print(format_run_footer(report=report, cache=cache))
    return 0


def _run_obs(args) -> int:
    import json
    import os

    from .core.config import ControlPlaneConfig
    from .experiments.harness import run_pct_point
    from .experiments.report import format_latency_breakdown
    from .obs import Observability
    from .obs.export import (
        timeline_summary,
        validate_chrome_trace,
        write_chrome_trace,
    )

    table = _OBS_FIGURES[args.id]
    rate = args.rate if args.rate is not None else table["rate"]
    os.makedirs(args.out, exist_ok=True)

    labeled = []
    for label, (preset, kwargs), procedure, overrides in table["cases"]:
        config = getattr(ControlPlaneConfig, preset)(**kwargs)
        spec_kwargs = dict(procedure=procedure, **overrides)
        spec = _smoke_spec(**spec_kwargs) if args.smoke else _quick_spec(**spec_kwargs)
        obs = Observability("trace")
        point = run_pct_point(config, rate, spec, obs=obs)
        print(point.row())
        trace_path = os.path.join(args.out, "%s-%s.trace.json" % (args.id, label))
        data = write_chrome_trace(
            trace_path, obs.tracer, process_name="repro %s %s" % (args.id, label)
        )
        n_events = validate_chrome_trace(data)
        print("  trace ok (%d events) -> %s" % (n_events, trace_path))
        if args.timeline:
            print(timeline_summary(obs.tracer, limit=2))
        labeled.append((label, obs.snapshot()))

    metrics_path = os.path.join(args.out, "%s-metrics.json" % args.id)
    with open(metrics_path, "w") as fp:
        json.dump({label: snap for label, snap in labeled}, fp, indent=1)
        fp.write("\n")
    print("metrics snapshot -> %s" % metrics_path)
    print()
    print(
        format_latency_breakdown(
            labeled, title="Latency breakdown — %s @ %.0f procedures/s" % (args.id, rate)
        )
    )
    return 0


def _run_chaos(args) -> int:
    from .faults import FaultPlan, replay

    if args.chaos_command == "example":
        plan = FaultPlan(seed=args.seed, note="sample chaos schedule")
        plan.perturb("cta_cpf", drop_p=0.1, dup_p=0.05, reorder_p=0.1)
        plan.step("proc", proc="service_request")
        plan.step("fail_cpf", "cpf-20-0")
        plan.step("proc", proc="service_request")
        plan.step("wait", dt=0.01)
        plan.step("recover_cpf", "cpf-20-0")
        plan.step("proc", proc="handover")
        plan.save(args.output)
        print("wrote sample FaultPlan to %s" % args.output)
        return 0
    if args.chaos_command == "replay":
        plan = FaultPlan.load(args.plan)
        report = replay(plan, runs=args.runs, obs_mode="trace" if args.obs else None)
        result = report.results[0]
        for i, digest in enumerate(report.digests):
            print("run %d: digest=%s" % (i + 1, digest))
        print(result.brief())
        if result.violations:
            print("READ-YOUR-WRITES VIOLATIONS:")
            for violation in result.violations:
                print("  %r" % (violation,))
                if violation.span_id is not None:
                    print(
                        "    span: trace_id=%d span_id=%d (searchable in the "
                        "exported Perfetto trace)"
                        % (violation.trace_id, violation.span_id)
                    )
                for event in violation.trace:
                    print("    %r" % (event,))
        if args.show_trace:
            for line in result.trace.lines():
                print("  " + line)
        if not report.deterministic:
            print("NOT DETERMINISTIC: trace digests differ across runs")
            return 1
        print("deterministic: %d/%d runs produced identical traces" % (args.runs, args.runs))
        return 0 if result.ok else 1
    print("usage: python -m repro chaos {replay,example} ...")
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
