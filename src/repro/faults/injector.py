"""FaultInjector: executes a FaultPlan against a live deployment.

Installation (:meth:`FaultInjector.install`) sets ``dep.faults`` so the
deployment's single link choke point — :meth:`Deployment.hop` — routes
every traversal through :meth:`transit_event`:

* the link's seeded fault profile decides drop / duplicate / reorder /
  extra delay (``Link.transit``); a message that exhausts its
  retransmission budget is *lost* and the hop event fails with
  :class:`~repro.sim.network.LinkDown` — which subclasses
  ``NodeFailed``, so the §4.2.5 recovery machinery handles it without
  any protocol-layer changes;
* an active partition drops messages whose endpoints sit in opposite
  region groups (endpoint-aware hops only: replication, repair, and
  replay legs pass ``src``/``dst``);
* every fault lands in the :class:`~repro.faults.trace.EventTrace`.

All randomness comes from streams derived from ``plan.seed`` alone, so
the same plan produces the same faults whatever the workload seed is.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..sim.core import Event
from ..sim.network import Link, LinkDown
from ..sim.rng import RngRegistry
from .plan import FaultEvent, FaultOp, FaultPlan, LinkPerturbation
from .trace import EventTrace

__all__ = ["FaultInjector"]


def region_of(node_name: Optional[str]) -> Optional[str]:
    """Region geohash from a node name (``cpf-20-0`` -> ``20``)."""
    if not node_name:
        return None
    parts = node_name.split("-")
    return parts[1] if len(parts) >= 2 else None


class FaultInjector:
    """Applies one plan's perturbations, timed events, and scripted ops."""

    def __init__(
        self,
        dep,
        plan: Optional[FaultPlan] = None,
        trace: Optional[EventTrace] = None,
    ):
        self.dep = dep
        self.sim = dep.sim
        self.plan = plan or FaultPlan()
        self.trace = trace if trace is not None else EventTrace()
        self.rng = RngRegistry(self.plan.seed)
        self._partition: Optional[Tuple[frozenset, frozenset]] = None
        self.messages_lost = 0
        self.partition_drops = 0
        self.ops_applied = 0
        self.ops_skipped = 0
        #: crash-detection hooks: ``fn(now, op, target)`` called after
        #: every *applied* control op.  Listeners must be passive
        #: observers (counters, detection latches) — scheduling sim work
        #: from one would perturb runs that differ only in listeners.
        self._listeners: list = []

    # -- lifecycle -----------------------------------------------------------

    def install(self) -> "FaultInjector":
        """Claim the deployment's hop path and arm the plan."""
        if self.dep.faults is not None and self.dep.faults is not self:
            raise RuntimeError("another fault injector is already installed")
        self.dep.faults = self
        for perturbation in self.plan.perturbations:
            self._apply_perturbation(perturbation)
        for event in self.plan.events:
            delay = max(0.0, event.at - self.sim.now)
            self.sim.schedule(delay, self.fire, event)
        return self

    def uninstall(self) -> None:
        if self.dep.faults is self:
            self.dep.faults = None
        for link in self.dep.links.values():
            link.clear_faults()
            link.up = True
        self._partition = None

    # -- hop choke point -----------------------------------------------------

    def transit_event(
        self,
        link: Link,
        nbytes: int,
        src: Optional[str] = None,
        dst: Optional[str] = None,
    ) -> Event:
        """The faulty replacement for ``sim.timeout(link.delay(n))``."""
        sim = self.sim
        if self._partitioned(src, dst):
            link.messages_sent += 1
            link.bytes_sent += nbytes
            link.dropped += 1
            self.partition_drops += 1
            self.messages_lost += 1
            self.trace.record(
                sim.now, "partition_drop", hop=link.name, src=src or "?", dst=dst or "?"
            )
            ev = sim.event("faults.partition")
            ev.fail(LinkDown("partition: %s -/- %s" % (src, dst)))
            return ev
        transit = link.transit(nbytes)
        if transit.lost:
            self.messages_lost += 1
            self.trace.record(
                sim.now,
                "msg_lost",
                hop=link.name,
                nbytes=nbytes,
                retransmits=transit.retransmits,
                src=src or "?",
                dst=dst or "?",
            )
            ev = sim.event("faults.lost")
            ev.fail(LinkDown(link.name))
            return ev
        if transit.perturbed:
            self.trace.record(
                sim.now,
                "msg_perturbed",
                hop=link.name,
                nbytes=nbytes,
                dup=transit.duplicated,
                reorder=transit.reordered,
                retransmits=transit.retransmits,
            )
        elif self.trace.verbose:
            self.trace.record(sim.now, "msg", hop=link.name, nbytes=nbytes)
        return sim.timeout(transit.delay)

    def _partitioned(self, src: Optional[str], dst: Optional[str]) -> bool:
        if self._partition is None:
            return False
        ra, rb = region_of(src), region_of(dst)
        if ra is None or rb is None:
            return False
        group_a, group_b = self._partition
        return (ra in group_a and rb in group_b) or (ra in group_b and rb in group_a)

    # -- control operations ---------------------------------------------------

    def add_listener(self, fn) -> None:
        """Register a crash-detection hook (see ``_listeners``)."""
        self._listeners.append(fn)

    def fire(self, op: FaultOp) -> None:
        """Apply one control op (timed event or scripted step) now."""
        handler = getattr(self, "_op_" + op.op, None)
        if handler is None:
            raise ValueError("op %r cannot be fired by the injector" % (op.op,))
        if not handler(op):
            self.ops_skipped += 1
            self.trace.record(self.sim.now, "op_skipped", op=op.op, target=op.target)
            return
        self.ops_applied += 1
        self.trace.record(self.sim.now, "op", op=op.op, target=op.target)
        for fn in self._listeners:
            fn(self.sim.now, op.op, op.target)

    # each _op_* returns False when skipped (e.g. last-alive guard)

    def _op_fail_cpf(self, op: FaultOp) -> bool:
        cpf = self.dep.cpfs.get(op.target)
        if cpf is None or not cpf.up:
            return False
        if self.plan.guard_last_alive:
            alive = [n for n, c in self.dep.cpfs.items() if c.up]
            if len(alive) <= 1:
                return False
        self.dep.fail_cpf(op.target)
        return True

    def _op_recover_cpf(self, op: FaultOp) -> bool:
        cpf = self.dep.cpfs.get(op.target)
        if cpf is None or cpf.up:
            return False
        self.dep.recover_cpf(op.target)
        return True

    def _op_fail_cta(self, op: FaultOp) -> bool:
        cta = self.dep.ctas.get(op.target)
        if cta is None or not cta.up:
            return False
        if self.plan.guard_last_alive:
            alive = [n for n, c in self.dep.ctas.items() if c.up]
            if len(alive) <= 1:
                return False
        self.dep.fail_cta(op.target)
        return True

    def _op_recover_cta(self, op: FaultOp) -> bool:
        cta = self.dep.ctas.get(op.target)
        if cta is None or cta.up:
            return False
        self.dep.recover_cta(op.target)
        return True

    def _op_blackhole(self, op: FaultOp) -> bool:
        link = self.dep.links.get(op.target)
        if link is None or not link.up:
            return False
        link.up = False
        return True

    def _op_restore(self, op: FaultOp) -> bool:
        link = self.dep.links.get(op.target)
        if link is None or link.up:
            return False
        link.up = True
        return True

    def _op_partition(self, op: FaultOp) -> bool:
        groups = op.target.split("|")
        if len(groups) != 2:
            raise ValueError(
                "partition target must be two |-separated groups, got %r" % op.target
            )
        self._partition = (
            frozenset(g for g in groups[0].split(",") if g),
            frozenset(g for g in groups[1].split(",") if g),
        )
        return True

    def _op_heal(self, op: FaultOp) -> bool:
        if self._partition is None:
            return False
        self._partition = None
        return True

    def _op_perturb(self, op: FaultOp) -> bool:
        self._apply_perturbation(op.perturbation)
        return True

    def _op_clear_faults(self, op: FaultOp) -> bool:
        for link in self.dep.links.values():
            link.clear_faults()
        self._partition = None
        return True

    def _apply_perturbation(self, p: LinkPerturbation) -> None:
        link = self.dep.links.get(p.hop)
        if link is None:
            raise KeyError("unknown hop class %r" % (p.hop,))
        link.set_faults(
            drop_p=p.drop_p,
            dup_p=p.dup_p,
            reorder_p=p.reorder_p,
            extra_delay_s=p.extra_delay_s,
            rng=self.rng.stream("link." + p.hop),
            reorder_spread_s=p.reorder_spread_s,
            rto_s=p.rto_s,
            max_retx=p.max_retx,
        )

    # -- reporting ------------------------------------------------------------

    def fault_counters(self) -> Dict[str, int]:
        out = {
            "messages_lost": self.messages_lost,
            "partition_drops": self.partition_drops,
            "ops_applied": self.ops_applied,
            "ops_skipped": self.ops_skipped,
        }
        for name, link in sorted(self.dep.links.items()):
            if link.dropped or link.duplicated or link.reordered or link.retransmits:
                out["link.%s.dropped" % name] = link.dropped
                out["link.%s.duplicated" % name] = link.duplicated
                out["link.%s.reordered" % name] = link.reordered
                out["link.%s.retransmits" % name] = link.retransmits
        return out
