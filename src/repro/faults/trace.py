"""Event traces: the determinism witness for chaos runs.

Every fault the injector applies (and, in verbose mode, every link
traversal) is appended as a :class:`TraceRecord`; the canonical line
format feeds a blake2b :meth:`EventTrace.digest`.  Two runs of the
same :class:`~repro.faults.plan.FaultPlan` against the same workload
seed must produce byte-identical traces — equal digests — which is
exactly what ``python -m repro chaos replay`` asserts.

Records never contain process-randomized values (no ``hash()``-derived
identifiers, no wall-clock times), so digests are stable across
interpreter invocations regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = ["TraceRecord", "EventTrace", "merge_traces"]


def _canonical(value: object) -> str:
    """Stable textual form; floats use repr (shortest round-trip)."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


@dataclass(frozen=True)
class TraceRecord:
    """One recorded event: time, kind, and sorted key/value detail."""

    time: float
    kind: str
    detail: Tuple[Tuple[str, object], ...] = ()

    def line(self) -> str:
        pairs = ";".join("%s=%s" % (k, _canonical(v)) for k, v in self.detail)
        return "%s|%s|%s" % (repr(self.time), self.kind, pairs)

    def __repr__(self) -> str:
        return "<%s>" % self.line()


class EventTrace:
    """Append-only recorder with a canonical digest.

    ``verbose=True`` additionally records clean (unperturbed) link
    traversals — the full event stream, used by the determinism tests
    on small runs; the default records only faults and control ops so
    full-figure runs stay cheap.
    """

    def __init__(self, verbose: bool = False):
        self.verbose = verbose
        self.records: List[TraceRecord] = []

    def record(self, time: float, kind: str, **detail: object) -> None:
        self.records.append(TraceRecord(time, kind, tuple(sorted(detail.items()))))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def lines(self) -> List[str]:
        return [r.line() for r in self.records]

    def digest(self) -> str:
        h = hashlib.blake2b(digest_size=16)
        for record in self.records:
            h.update(record.line().encode("utf-8"))
            h.update(b"\n")
        return h.hexdigest()

    def kinds(self) -> dict:
        counts: dict = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts


def merge_traces(streams, labels=None) -> EventTrace:
    """Merge per-shard traces into one deterministic global trace.

    ``streams`` is a sequence of :class:`EventTrace` instances (or bare
    record lists, as shipped back from shard workers).  Records are
    ordered by ``(time, stream index, arrival sequence)`` — time first,
    then the fixed shard order, then each shard's own deterministic
    append order — so the merged digest depends only on the per-shard
    streams, never on OS scheduling.  Every record gains a ``shard``
    detail key (the stream's label, default its index), which keeps the
    merged trace attributable and distinct from a single-process trace.
    """
    rows = []
    for idx, stream in enumerate(streams):
        label = labels[idx] if labels is not None else idx
        records = getattr(stream, "records", stream)
        for seq, record in enumerate(records):
            rows.append((record.time, idx, seq, record, label))
    rows.sort(key=lambda row: (row[0], row[1], row[2]))
    merged = EventTrace()
    append = merged.records.append
    for _, _, _, record, label in rows:
        detail = tuple(sorted(record.detail + (("shard", label),)))
        append(TraceRecord(record.time, record.kind, detail))
    return merged
