"""FaultPlan: a declarative, seed-driven schedule of faults.

A plan is pure data — it names *what* goes wrong and *when*, never how
the simulation reacts — so any failing schedule (hand-written, swept,
or hypothesis-minimized) serializes to JSON and replays bit-for-bit::

    plan = FaultPlan(seed=7)
    plan.perturb("cta_cpf", drop_p=0.05, reorder_p=0.1)
    plan.at(0.0003, "fail_cpf", "cpf-20-0")
    plan.step("proc", proc="handover", target_bs="bs-21-0")
    plan.save("schedule.json")             # later:
    plan2 = FaultPlan.load("schedule.json")

Three ingredients:

* ``perturbations`` — per-hop-class message fault profiles (seeded
  drop/dup/reorder probabilities + extra delay) installed at t=0.
* ``events`` — timed control actions (crash/recover a CPF or CTA,
  blackhole/restore a link, partition/heal region groups, install or
  clear perturbations) fired by the simulator clock.
* ``steps`` — a *sequential* script (run procedures, wait, inject)
  executed by :func:`repro.faults.runner.run_plan`'s driver process;
  this is the shape property-based schedules take.

``partition`` targets name two region groups separated by ``|`` with
``,``-separated members, e.g. ``"20|21"`` or ``"20,21|22,23"``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["LinkPerturbation", "FaultOp", "FaultEvent", "FaultPlan"]

#: every action a plan may take (``proc``/``wait`` only make sense as
#: sequential steps; the rest work both timed and scripted).
OPS = frozenset(
    (
        "proc",
        "wait",
        "fail_cpf",
        "recover_cpf",
        "fail_cta",
        "recover_cta",
        "blackhole",
        "restore",
        "partition",
        "heal",
        "perturb",
        "clear_faults",
    )
)

_STEP_ONLY = frozenset(("proc", "wait"))


@dataclass(frozen=True)
class LinkPerturbation:
    """Seeded message-fault profile for one hop class."""

    hop: str
    drop_p: float = 0.0
    dup_p: float = 0.0
    reorder_p: float = 0.0
    extra_delay_s: float = 0.0
    reorder_spread_s: Optional[float] = None
    rto_s: Optional[float] = None
    max_retx: int = 7

    _DEFAULTS = {
        "drop_p": 0.0,
        "dup_p": 0.0,
        "reorder_p": 0.0,
        "extra_delay_s": 0.0,
        "reorder_spread_s": None,
        "rto_s": None,
        "max_retx": 7,
    }

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"hop": self.hop}
        for key, default in self._DEFAULTS.items():
            value = getattr(self, key)
            if value != default:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LinkPerturbation":
        return cls(**data)


@dataclass(frozen=True)
class FaultOp:
    """One scripted action.

    Field use depends on ``op``:

    * ``proc``     — run ``proc`` (a procedure name) on UE ``target``
      (default: the plan's first UE), optionally toward ``target_bs``.
    * ``wait``     — advance simulated time by ``dt`` seconds.
    * ``fail_* / recover_*`` — ``target`` is the node name.
    * ``blackhole / restore`` — ``target`` is the hop class.
    * ``partition`` — ``target`` is the two region groups (``"20|21"``).
    * ``perturb``  — install ``perturbation``; ``clear_faults`` resets
      every link profile (and heals any partition).
    """

    op: str
    target: str = ""
    dt: float = 0.0
    proc: str = ""
    target_bs: str = ""
    perturbation: Optional[LinkPerturbation] = None

    def __post_init__(self):
        if self.op not in OPS:
            raise ValueError("unknown fault op %r" % (self.op,))
        if self.op == "wait" and self.dt < 0:
            raise ValueError("wait dt must be non-negative")
        if self.op == "perturb" and self.perturbation is None:
            raise ValueError("perturb op needs a perturbation")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.op}
        if self.target:
            out["target"] = self.target
        if self.dt:
            out["dt"] = self.dt
        if self.proc:
            out["proc"] = self.proc
        if self.target_bs:
            out["target_bs"] = self.target_bs
        if self.perturbation is not None:
            out["perturbation"] = self.perturbation.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultOp":
        data = dict(data)
        pert = data.pop("perturbation", None)
        if pert is not None:
            data["perturbation"] = LinkPerturbation.from_dict(pert)
        return cls(**data)


@dataclass(frozen=True)
class FaultEvent(FaultOp):
    """A :class:`FaultOp` fired at an absolute simulated time."""

    at: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if self.op in _STEP_ONLY:
            raise ValueError("%r is a sequential step, not a timed event" % self.op)
        if self.at < 0:
            raise ValueError("event time must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out["at"] = self.at
        return out


@dataclass
class FaultPlan:
    """A complete, serializable chaos schedule.

    ``seed`` drives every random draw the injector makes (independent
    of the workload's RNG registry), so identical plans yield identical
    fault outcomes.  ``guard_last_alive`` (default on) makes scripted
    and timed kills no-ops when they would take down the last living
    CPF or CTA — generated schedules then can't trivially wedge the
    deployment; set it off to test total-outage behaviour.
    """

    seed: int = 0
    note: str = ""
    config: str = "neutrino"
    topology: Dict[str, int] = field(
        default_factory=lambda: {"regions": 2, "cpfs_per_region": 2, "bss_per_region": 2}
    )
    workload: Dict[str, Any] = field(default_factory=dict)
    perturbations: List[LinkPerturbation] = field(default_factory=list)
    events: List[FaultEvent] = field(default_factory=list)
    steps: List[FaultOp] = field(default_factory=list)
    guard_last_alive: bool = True

    # -- builders (each returns self for chaining) --------------------------

    def perturb(self, hop: str, **kwargs: Any) -> "FaultPlan":
        self.perturbations.append(LinkPerturbation(hop, **kwargs))
        return self

    def at(self, t: float, op: str, target: str = "", **kwargs: Any) -> "FaultPlan":
        self.events.append(FaultEvent(op=op, target=target, at=t, **kwargs))
        return self

    def step(self, op: str, target: str = "", **kwargs: Any) -> "FaultPlan":
        self.steps.append(FaultOp(op=op, target=target, **kwargs))
        return self

    def with_events(self, *events: FaultEvent) -> "FaultPlan":
        """A copy with extra timed events (leaves this plan untouched)."""
        return replace(
            self,
            topology=dict(self.topology),
            workload=dict(self.workload),
            perturbations=list(self.perturbations),
            events=list(self.events) + list(events),
            steps=list(self.steps),
        )

    # -- JSON round-trip -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "note": self.note,
            "config": self.config,
            "topology": dict(self.topology),
            "workload": dict(self.workload),
            "perturbations": [p.to_dict() for p in self.perturbations],
            "events": [e.to_dict() for e in self.events],
            "steps": [s.to_dict() for s in self.steps],
            "guard_last_alive": self.guard_last_alive,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=data.get("seed", 0),
            note=data.get("note", ""),
            config=data.get("config", "neutrino"),
            topology=dict(data.get("topology", {"regions": 2, "cpfs_per_region": 2, "bss_per_region": 2})),
            workload=dict(data.get("workload", {})),
            perturbations=[
                LinkPerturbation.from_dict(p) for p in data.get("perturbations", ())
            ],
            events=[FaultEvent.from_dict(e) for e in data.get("events", ())],
            steps=[FaultOp.from_dict(s) for s in data.get("steps", ())],
            guard_last_alive=data.get("guard_last_alive", True),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as fp:
            fp.write(self.to_json())
            fp.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fp:
            return cls.from_json(fp.read())
