"""Deterministic, seed-driven fault injection (chaos) for the core.

Public surface:

* :class:`FaultPlan`, :class:`FaultEvent`, :class:`FaultOp`,
  :class:`LinkPerturbation` — the declarative, JSON-serializable
  schedule DSL.
* :class:`FaultInjector` — executes a plan against a live
  :class:`~repro.core.deployment.Deployment` (hooks the link choke
  point, fires timed events, applies scripted ops).
* :class:`EventTrace`, :class:`TraceRecord` — canonical event recorder
  whose digest witnesses bit-for-bit replay.
* :func:`run_plan`, :func:`replay` — one-call plan execution and the
  determinism check behind ``python -m repro chaos replay``.

The always-on consistency check lives in
:class:`repro.core.consistency.RYWAuditor`; every run returned by
:func:`run_plan` carries its verdict.
"""

from .injector import FaultInjector, region_of
from .plan import FaultEvent, FaultOp, FaultPlan, LinkPerturbation
from .runner import (
    CONFIG_PRESETS,
    ReplayReport,
    RunResult,
    config_from_name,
    replay,
    resolve_target_bs,
    run_plan,
)
from .trace import EventTrace, TraceRecord

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "FaultOp",
    "LinkPerturbation",
    "FaultInjector",
    "EventTrace",
    "TraceRecord",
    "RunResult",
    "ReplayReport",
    "run_plan",
    "replay",
    "region_of",
    "resolve_target_bs",
    "config_from_name",
    "CONFIG_PRESETS",
]
