"""Run a FaultPlan end to end and report what the auditor saw.

:func:`run_plan` is the one entry point behind the chaos CLI, the
property-based consistency tests, and the regression-schedule corpus:
it builds the plan's topology, bootstraps its workload UEs, installs a
:class:`~repro.faults.injector.FaultInjector`, executes the plan's
sequential steps in a driver process (timed events fire on the side),
and returns a :class:`RunResult` carrying the Read-your-Writes audit,
the event trace (whose digest is the determinism witness), and the
fault counters.

Everything here is a pure function of the plan: same plan, same
result, same trace digest — :func:`replay` asserts exactly that by
running a plan twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import ControlPlaneConfig
from ..core.consistency import Violation
from ..core.deployment import Deployment
from ..core.ue import ProcedureAborted
from ..sim.core import Simulator
from ..sim.node import NodeFailed
from ..sim.rng import RngRegistry
from .injector import FaultInjector
from .plan import FaultPlan
from .trace import EventTrace

__all__ = ["RunResult", "ReplayReport", "run_plan", "replay", "CONFIG_PRESETS"]

CONFIG_PRESETS = {
    "neutrino": ControlPlaneConfig.neutrino,
    "existing_epc": ControlPlaneConfig.existing_epc,
    "skycore": ControlPlaneConfig.skycore,
    "dpcm": ControlPlaneConfig.dpcm,
}

#: procedures that need a target base station.
_NEEDS_TARGET = ("handover", "fast_handover", "intra_handover")


def config_from_name(name: str) -> ControlPlaneConfig:
    try:
        return CONFIG_PRESETS[name]()
    except KeyError:
        raise KeyError(
            "unknown config preset %r (have: %s)" % (name, ", ".join(sorted(CONFIG_PRESETS)))
        )


def resolve_target_bs(dep: Deployment, ue, proc: str) -> str:
    """Deterministic target BS for a handover-style procedure.

    ``handover``/``fast_handover`` pick the first BS (sorted) in a
    different region; ``intra_handover`` picks a different BS in the
    same region.  Deterministic so generated plans stay serializable
    with ``target_bs`` left empty.
    """
    home_region = dep.bss[ue.bs_name].region
    for bs_name in sorted(dep.bss):
        if bs_name == ue.bs_name:
            continue
        same = dep.bss[bs_name].region == home_region
        if (proc == "intra_handover") == same:
            return bs_name
    raise LookupError("no eligible target BS for %s from %s" % (proc, ue.bs_name))


@dataclass
class RunResult:
    """Everything one chaos run produced."""

    plan: FaultPlan
    violations: List[Violation]
    serves: int
    writes: int
    completed: int
    recovered: int
    reattached: int
    aborts: List[str]
    trace: EventTrace
    fault_counters: Dict[str, int]
    pct_ms: Dict[str, Dict[str, Optional[float]]]
    end_time_s: float
    summary: Dict[str, Any] = field(default_factory=dict, repr=False)
    #: the live deployment, for white-box assertions in tests.
    dep: Any = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def digest(self) -> str:
        return self.trace.digest()

    def brief(self) -> str:
        return (
            "serves=%d writes=%d violations=%d completed=%d recovered=%d "
            "reattached=%d aborts=%d lost=%d digest=%s"
            % (
                self.serves,
                self.writes,
                len(self.violations),
                self.completed,
                self.recovered,
                self.reattached,
                len(self.aborts),
                self.fault_counters.get("messages_lost", 0),
                self.digest,
            )
        )


def _workload_ues(plan: FaultPlan, dep: Deployment) -> List[Dict[str, str]]:
    ues = list(plan.workload.get("ues", ()))
    if not ues:
        ues = [{"id": "ue-0", "bs": sorted(dep.bss)[0]}]
    return ues


def run_plan(
    plan: FaultPlan,
    config: Optional[ControlPlaneConfig] = None,
    verbose_trace: bool = False,
    obs=None,
) -> RunResult:
    """Execute one plan; deterministic in (plan, config) alone.

    ``obs`` (a :class:`repro.obs.Observability`) is installed on the
    deployment when given; it never changes the run's trace digest —
    the witness tests pin that — but lets a violation report carry the
    span ids of the offending serve.
    """
    sim = Simulator()
    cfg = config if config is not None else config_from_name(plan.config)
    topology = plan.topology or {}
    dep = Deployment.build_grid(
        sim,
        cfg,
        cpfs_per_region=int(topology.get("cpfs_per_region", 2)),
        bss_per_region=int(topology.get("bss_per_region", 2)),
        regions=int(topology.get("regions", 2)),
        rng=RngRegistry(plan.seed),
    )
    if obs is not None:
        obs.install(dep)
    trace = EventTrace(verbose=verbose_trace)
    injector = FaultInjector(dep, plan, trace=trace).install()

    ues = _workload_ues(plan, dep)
    for entry in ues:
        dep.bootstrap_ue(entry["id"], entry["bs"])
    default_ue = ues[0]["id"]
    aborts: List[str] = []

    def driver():
        yield sim.timeout(0.0)  # always a generator, even for empty plans
        for op in plan.steps:
            if op.op == "wait":
                yield sim.timeout(op.dt)
            elif op.op == "proc":
                ue = dep.ue(op.target or default_ue)
                target_bs = op.target_bs or None
                if target_bs is None and op.proc in _NEEDS_TARGET:
                    target_bs = resolve_target_bs(dep, ue, op.proc)
                trace.record(sim.now, "proc_start", proc=op.proc, ue=ue.ue_id)
                try:
                    outcome = yield from ue.execute(op.proc, target_bs=target_bs)
                except (ProcedureAborted, NodeFailed, LookupError) as exc:
                    aborts.append("%s(%s): %s" % (op.proc, ue.ue_id, exc))
                    trace.record(sim.now, "proc_aborted", proc=op.proc, ue=ue.ue_id)
                else:
                    trace.record(
                        sim.now,
                        "proc_done",
                        proc=op.proc,
                        ue=ue.ue_id,
                        completed=outcome.completed,
                        recovered=outcome.recovered,
                        reattached=outcome.reattached,
                    )
            else:
                injector.fire(op)

    sim.process(driver(), name="chaos.driver")
    sim.run()  # drains: checkpoints, repairs, scan passes, timed events

    return RunResult(
        plan=plan,
        violations=list(dep.auditor.violations),
        serves=dep.auditor.serves,
        writes=dep.auditor.writes,
        completed=sum(1 for o in dep.outcomes if o.completed),
        recovered=sum(1 for o in dep.outcomes if o.recovered),
        reattached=sum(1 for o in dep.outcomes if o.reattached),
        aborts=aborts,
        trace=trace,
        fault_counters=injector.fault_counters(),
        pct_ms={
            name: {
                "count": tally.count,
                "p50": tally.percentile(50),
                "p95": tally.percentile(95),
                "p99": tally.percentile(99),
            }
            for name, tally in sorted(dep.pct.items())
        },
        end_time_s=sim.now,
        summary=dep.summary(),
        dep=dep,
    )


@dataclass
class ReplayReport:
    """Outcome of replaying one plan ``runs`` times."""

    digests: List[str]
    results: List[RunResult]

    @property
    def deterministic(self) -> bool:
        return len(set(self.digests)) == 1

    @property
    def violations(self) -> int:
        return max(len(r.violations) for r in self.results)


def replay(
    plan: FaultPlan,
    runs: int = 2,
    config: Optional[ControlPlaneConfig] = None,
    verbose_trace: bool = True,
    obs_mode: Optional[str] = None,
) -> ReplayReport:
    """Run the plan ``runs`` times; equal digests == deterministic.

    ``obs_mode`` ("metrics" or "trace") installs a fresh
    :class:`repro.obs.Observability` per run, so violation reports carry
    span ids while the digest comparison still proves obs changed
    nothing.
    """
    if runs < 1:
        raise ValueError("need at least one run")

    def _obs():
        if obs_mode is None:
            return None
        from ..obs import Observability  # deferred: keep faults obs-optional

        return Observability(obs_mode)

    results = [
        run_plan(plan, config=config, verbose_trace=verbose_trace, obs=_obs())
        for _ in range(runs)
    ]
    return ReplayReport(digests=[r.digest for r in results], results=results)
