"""The city-scale scenario engine.

:func:`run_scenario` turns one :class:`~repro.scale.scenarios.ScenarioSpec`
into a deterministic simulated run:

* the city topology comes from geo-hash tiles (``repro.scale.topology``),
  so placement is entirely ring-driven;
* the population is an aggregated-UE cohort (``repro.scale.cohort``) —
  one driver process plays merged Poisson arrival streams (service,
  mobility, TAU) whose aggregate rates are ``n_ue`` times the per-UE
  rates, picking the affected UE uniformly per arrival (superposition
  of n independent Poisson processes);
* every mobility arrival consults the scenario's mobility model; a
  tile transition becomes an intra-region reselection, a Fast Handover
  (shared level-2 parent, §4.3) or a full handover;
* timed faults run through the standard :class:`FaultInjector`, ring
  churn through :meth:`Deployment.add_region` / ``retire_region`` with
  staggered replica re-placement fetches and drain-then-retire
  evacuation handovers;
* measurements stream into bounded-memory
  :class:`~repro.sim.monitor.QuantileSketch` objects keyed by
  ``(region, procedure)`` — no per-procedure list survives the run, so
  100k+ UE populations hold memory flat.

Everything is a pure function of the spec (seed included): the
:class:`EventTrace` digest is the determinism witness, and the
cohort-vs-individual conformance test pins that the flyweight model is
bit-identical to N persistent UE objects.
"""

from __future__ import annotations

import heapq
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.deployment import Deployment
from ..faults.injector import FaultInjector
from ..faults.plan import FaultEvent, FaultPlan, LinkPerturbation
from ..faults.runner import config_from_name
from ..faults.trace import EventTrace
from ..sim.core import Simulator
from ..sim.monitor import QuantileSketch
from ..sim.rng import RngRegistry
from ..traffic.mobility import (
    CommuteWaveMobility,
    FlashCrowdMobility,
    MobilityModel,
    RandomWalkMobility,
)
from ..traffic.arrivals import modulated_arrivals
from ..traffic.models import (
    Exponential,
    class_ranges,
    get_model,
    process_stream,
    storm_times,
)
from .cohort import BatchedDriver, CohortDriver, IndividualDriver
from .scenarios import ScenarioSpec, get_scenario
from .topology import (
    CHILD_ORDER,
    CityTopology,
    build_city,
    region_for_tile,
    tile_adjacency,
)

__all__ = ["ScaleResult", "run_scenario", "run_replicates"]

#: when a re-placement / evacuation finds the UE mid-procedure it polls
#: the busy flag at this interval, giving up after ``_BUSY_TRIES``.
_BUSY_POLL_S = 0.002
_BUSY_TRIES = 250

#: populations at or below this keep the auditor's per-UE causal
#: history (diagnostics); above it, detection-only mode (bounded memory).
_HISTORY_MAX_UES = 5000


def _tag(times, idx: int):
    """Tag a time stream with its index for a stable heapq.merge order."""
    for t in times:
        yield (t, idx)


def peak_rss_kb() -> float:
    """Peak resident set size of this process in KiB (0.0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX interpreter
        return 0.0
    rss = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        rss /= 1024.0
    return rss


def _bounded_renewal(dist, duration_s: float, rng):
    """Renewal arrival times of ``dist`` truncated to ``[0, duration)``."""
    return modulated_arrivals(dist.sample, duration_s, rng)


# --------------------------------------------------------------------------- result


@dataclass
class ScaleResult:
    """Everything one scale run produced (JSON/cache-round-trippable)."""

    scenario: str
    mode: str
    n_ue: int
    duration_s: float
    seed: int
    end_time_s: float
    regions_final: int
    serves: int
    writes: int
    violations: int
    completed: int
    aborted: int
    recovered: int
    reattached: int
    counters: Dict[str, int] = field(default_factory=dict)
    fault_counters: Dict[str, int] = field(default_factory=dict)
    #: region -> procedure -> {count, mean, min, max, p50, p95, p99} (ms)
    region_pct_ms: Dict[str, Dict[str, Dict[str, Optional[float]]]] = field(
        default_factory=dict
    )
    digest: str = ""
    trace_events: int = 0
    #: batched-lane execution stats (admitted/fallback/spills/...).
    #: compare=False: the lane is an execution strategy, not a result —
    #: cohort-vs-batched conformance compares everything else.
    lane: Dict[str, int] = field(default_factory=dict, compare=False)
    #: shard count the run was partitioned into (1 = single process).
    n_shards: int = 1
    #: measured execution cost — total wall-clock seconds and peak RSS
    #: (and, sharded, the critical-path shard wall).  compare=False:
    #: wall-clock is machine-dependent, never part of the result contract.
    perf: Dict[str, float] = field(default_factory=dict, compare=False)
    #: per-shard breakdown (owned parents, local UEs, migrations, wall,
    #: RSS, violations sample, final health row) — empty for
    #: single-process runs.
    shards: List[Dict[str, Any]] = field(default_factory=list, compare=False)
    #: path of the run ledger written for this run ("" = none) — see
    #: :mod:`repro.obs.ledger`.  compare=False: an artifact pointer,
    #: not part of the simulated result.
    ledger_path: str = field(default="", compare=False)

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScaleResult":
        return cls(**data)

    def format_report(self) -> str:
        head = "scenario %s  mode=%s  n_ue=%d  duration=%.3fs  seed=%d" % (
            self.scenario, self.mode, self.n_ue, self.duration_s, self.seed,
        )
        if self.n_shards > 1:
            head += "  shards=%d" % self.n_shards
        lines = [
            head,
            "consistency: serves=%d writes=%d violations=%d"
            % (self.serves, self.writes, self.violations),
            "procedures: completed=%d aborted=%d recovered=%d reattached=%d"
            % (self.completed, self.aborted, self.recovered, self.reattached),
            "regions at end: %d   trace: %d events, digest %s"
            % (self.regions_final, self.trace_events, self.digest),
        ]
        if self.perf:
            perf = "perf: wall=%.3fs peak_rss=%.1fMB" % (
                self.perf.get("wall_s", 0.0),
                self.perf.get("peak_rss_kb", 0.0) / 1024.0,
            )
            if "max_shard_wall_s" in self.perf:
                perf += "  max_shard_wall=%.3fs total_rss=%.1fMB" % (
                    self.perf["max_shard_wall_s"],
                    self.perf.get("total_rss_kb", 0.0) / 1024.0,
                )
            lines.append(perf)
        for shard in self.shards:
            line = (
                "  shard %d: parents=%s n_local=%d migrations=%d/%d "
                "wall=%.3fs rss=%.1fMB violations=%d"
                % (
                    shard.get("shard", 0),
                    ",".join(shard.get("parents", ())),
                    shard.get("n_local", 0),
                    shard.get("migrations_out", 0),
                    shard.get("migrations_in", 0),
                    shard.get("wall_s", 0.0),
                    shard.get("rss_kb", 0.0) / 1024.0,
                    shard.get("violations", 0),
                )
            )
            health = shard.get("health")
            if health:
                line += " events=%d completed=%d" % (
                    health.get("events", 0),
                    health.get("completed", 0),
                )
            lines.append(line)
        if self.ledger_path:
            lines.append("ledger: %s" % self.ledger_path)
        if self.counters:
            lines.append(
                "engine: "
                + " ".join(
                    "%s=%d" % (k, v) for k, v in sorted(self.counters.items())
                )
            )
        if any(self.fault_counters.values()):
            lines.append(
                "faults: "
                + " ".join(
                    "%s=%s" % (k, v) for k, v in sorted(self.fault_counters.items())
                )
            )
        lines.append(
            "%-10s %-16s %8s %9s %9s %9s"
            % ("region", "procedure", "count", "p50 ms", "p95 ms", "p99 ms")
        )
        for region in sorted(self.region_pct_ms):
            for proc in sorted(self.region_pct_ms[region]):
                s = self.region_pct_ms[region][proc]
                lines.append(
                    "%-10s %-16s %8d %9s %9s %9s"
                    % (
                        region,
                        proc,
                        int(s.get("count", 0)),
                        _fmt_ms(s.get("p50")),
                        _fmt_ms(s.get("p95")),
                        _fmt_ms(s.get("p99")),
                    )
                )
        return "\n".join(lines)


def _fmt_ms(value: Optional[float]) -> str:
    return "-" if value is None else "%.3f" % value


# --------------------------------------------------------------------------- engine


def _mobility_for(spec: ScenarioSpec, topo: CityTopology) -> MobilityModel:
    w0 = spec.wave_window[0] * spec.duration_s
    w1 = spec.wave_window[1] * spec.duration_s
    if spec.mobility_model == "random_walk":
        return RandomWalkMobility(topo.adjacency)
    if spec.mobility_model == "commute":
        downtown_parent = sorted({t[:-1] for t in topo.tiles})[0]
        downtown = [t for t in topo.tiles if t.startswith(downtown_parent)]
        return CommuteWaveMobility(topo.adjacency, downtown, w0, w1)
    if spec.mobility_model == "flash_crowd":
        ordered = sorted(topo.tiles)
        venue = ordered[len(ordered) // 2]
        return FlashCrowdMobility(topo.adjacency, venue, w0, w1)
    raise ValueError("unknown mobility model %r" % (spec.mobility_model,))


def _expand_fault_events(
    spec: ScenarioSpec, topo: CityTopology
) -> List[FaultEvent]:
    """Timed FaultEvents from the spec's fractional schedule.

    ``target`` forms: a plain node/hop name (passed through with the
    spec's op verbatim), or ``region:index:<k>`` / ``region:<tile>`` with
    op ``fail``/``recover`` — expanded to the tile's CTA plus every CPF.
    """
    tiles = sorted(topo.tiles)
    events: List[FaultEvent] = []
    for frac, op, target in spec.fault_events:
        at = frac * spec.duration_s
        if not target.startswith("region:"):
            events.append(FaultEvent(op=op, target=target, at=at))
            continue
        parts = target.split(":")
        if len(parts) == 3 and parts[1] == "index":
            tile = tiles[int(parts[2])]
        else:
            tile = parts[1]
        region = region_for_tile(tile, spec.cpfs_per_region, spec.bss_per_region)
        if op not in ("fail", "recover"):
            raise ValueError("region fault op must be fail/recover, got %r" % op)
        for cpf in region.cpfs:
            events.append(FaultEvent(op=op + "_cpf", target=cpf, at=at))
        events.append(FaultEvent(op=op + "_cta", target=region.cta, at=at))
    return events


class _Engine:
    """One scenario run's mutable state (drivers, churn, sinks)."""

    #: shard identity for health rows; the shard engine overrides both.
    shard_idx = 0
    #: whether this engine hosts its own controller tick loop (True for
    #: single-process runs; sharded runs tick at the coordinator and
    #: ship actions inside step messages instead).
    _local_controller = True

    def __init__(
        self,
        spec: ScenarioSpec,
        mode: str = "cohort",
        obs=None,
        verbose_trace: bool = False,
        stream=None,
    ):
        if mode not in ("cohort", "individual", "batched"):
            raise ValueError("mode must be 'cohort', 'individual', or 'batched'")
        self._wall0 = time.perf_counter()
        self.spec = spec
        self.mode = mode
        self.duration = spec.duration_s
        self.sim = Simulator()
        self.rngs = RngRegistry(spec.seed)
        self.topo = build_city(
            l2_regions=spec.l2_regions,
            l1_per_l2=spec.l1_per_l2,
            cpfs_per_region=spec.cpfs_per_region,
            bss_per_region=spec.bss_per_region,
            precision=spec.precision,
        )
        self.dep = Deployment(
            self.sim,
            config_from_name(spec.config),
            self.topo.region_map(),
            rng=self.rngs.fork("dep"),
        )
        keep = spec.audit_history
        if keep is None:
            keep = spec.n_ue <= _HISTORY_MAX_UES
        self.dep.auditor.keep_history = keep
        if obs is not None:
            obs.install(self.dep)

        self.trace = EventTrace(verbose=verbose_trace)
        plan = FaultPlan(
            seed=spec.seed,
            note="scale:" + spec.name,
            config=spec.config,
            events=_expand_fault_events(spec, self.topo),
            perturbations=[
                LinkPerturbation(hop, drop_p=drop_p)
                for hop, drop_p in spec.link_faults
            ],
        )
        self.injector = FaultInjector(self.dep, plan, trace=self.trace)

        # Orchestration state must exist before driver construction:
        # the batched lane's eligibility check reads ``orch_mutating``.
        self._obs = obs
        self._stream = stream
        self._controller = None
        self.orch_policy = None
        self.orch_mutating = False
        if getattr(spec, "orch_policy", None):
            from ..orch import OrchPolicy

            self.orch_policy = OrchPolicy.from_dict(spec.orch_policy)
            self.orch_mutating = self.orch_policy.mutating

        self.mobility = _mobility_for(spec, self.topo)
        bs_names = [b for r in self.topo.regions for b in r.bss]
        self.driver = self._make_driver(mode, bs_names)
        self.counters: Dict[str, int] = {}
        self.sketches: Dict[Tuple[str, str], QuantileSketch] = {}
        self._sketch_spill = 0
        self.dep.outcome_sink = self._observe_outcome

    def _make_driver(self, mode: str, bs_names: List[str]):
        """Driver factory; the shard engine substitutes grow-able drivers."""
        driver_cls = {
            "cohort": CohortDriver,
            "individual": IndividualDriver,
            "batched": BatchedDriver,
        }[mode]
        driver = driver_cls(self.dep, bs_names, self.spec.n_ue)
        if mode == "batched":
            driver.setup_lane(self)
        return driver

    # -- bounded-memory measurement ---------------------------------------

    def _observe_outcome(self, outcome) -> None:
        if outcome.pct is None:
            return
        placement = self.dep.placement_of(outcome.ue_id)
        region = placement.region if placement is not None else "?"
        key = (region, outcome.name)
        sketch = self.sketches.get(key)
        if sketch is None:
            sketch = self.sketches[key] = QuantileSketch(
                "%s/%s" % key, qs=(0.50, 0.95, 0.99), spill=self._sketch_spill
            )
        sketch.observe(outcome.pct)

    def _count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    # -- health / heartbeat feed -------------------------------------------

    def _owns_region(self, tile: str) -> bool:
        """Whether this engine owns ``tile`` (sharded engines override)."""
        return True

    def health_row(self) -> Dict[str, Any]:
        """Compact piggyback payload for the epoch-aligned heartbeat.

        Read-only over sim/auditor/driver state — requesting health
        never perturbs the schedule, so heartbeat-on and heartbeat-off
        runs are bit-identical (pinned by the sharded obs witness).
        With an orchestration policy active the row also carries the
        per-region ``load`` table the controller's decisions read.
        """
        sim = self.sim
        auditor = self.dep.auditor
        counters = self.counters
        row: Dict[str, Any] = {
            "shard": self.shard_idx,
            "t": sim.now,
            "events": sim._seq,
            "heap": len(sim._heap),
            "completed": self.driver.completed,
            "migrations_out": counters.get("migrations_out", 0),
            "migrations_in": counters.get("migrations_in", 0),
            "serves": auditor.serves,
            "writes": auditor.writes,
            "violations": len(auditor.violations),
        }
        if self._obs is not None and self._obs.metrics is not None:
            row["metrics"] = self._obs.metrics.compact_snapshot()
        if self.orch_policy is not None:
            row["load"] = self._load_table()
        return row

    def _load_table(self) -> Dict[str, Dict[str, Any]]:
        """Per-owned-region CPF pool state: members, up count, queue depth.

        ``q`` is the summed outstanding load (queued + in service) over
        the region's *up* CPFs — the controller divides by ``up`` for
        the per-CPF hysteresis signal; ``down`` lists dark members (the
        auto-heal detection input).
        """
        table: Dict[str, Dict[str, Any]] = {}
        regions = self.dep.region_map.regions
        for tile in sorted(regions):
            if not self._owns_region(tile):
                continue
            up = 0
            q = 0
            down: List[str] = []
            members = regions[tile].cpfs
            for name in members:
                cpf = self.dep.cpfs.get(name)
                if cpf is None:
                    continue
                if cpf.up:
                    up += 1
                    q += len(cpf.server.queue) + cpf.server.busy
                else:
                    down.append(name)
            table[tile] = {
                "members": list(members),
                "up": up,
                "q": q,
                "down": down,
            }
        return table

    # -- orchestration actions (repro.orch) --------------------------------
    #
    # Actions arrive from the controller — in-process (the ``_orch_loop``
    # tick below) or via the shard coordinator's step messages — and are
    # applied at epoch boundaries through the deployment's existing
    # choke points (ring ops + the rebalance/repair path).  In sharded
    # runs *every* shard applies every action (ring/node state must flip
    # identically in every ghost topology, and re-placement of local UEs
    # is per-shard work) but only the owner of the action's region
    # counts and traces it — exactly the fault-mirroring rule.

    def apply_actions(self, actions: List[Dict[str, Any]]) -> None:
        for action in actions:
            self.apply_action(action)

    def apply_action(self, action: Dict[str, Any]) -> None:
        kind = action["kind"]
        owns = self._owns_region(action["region"])
        if kind == "scale_out":
            self._orch_scale_out(action, owns)
        elif kind == "scale_in":
            self.sim.process(
                self._orch_scale_in(action, owns), name="orch.scale_in"
            )
        elif kind == "upgrade_begin":
            self.sim.process(
                self._orch_upgrade_begin(action, owns), name="orch.upgrade"
            )
        elif kind == "upgrade_replace":
            self.sim.process(
                self._orch_upgrade_replace(action, owns), name="orch.upgrade"
            )
        elif kind == "heal":
            self._orch_heal(action, owns)
        else:
            raise ValueError("unknown orchestration action %r" % (kind,))

    def _orch_trace(self, what: str, action: Dict[str, Any]) -> None:
        self.trace.record(
            self.sim.now,
            "orch",
            action=what,
            region=action["region"],
            cpf=action["cpf"],
        )

    def _orch_scale_out(self, action: Dict[str, Any], owns: bool) -> None:
        region_hash, name = action["region"], action["cpf"]
        region = self.dep.region_map.regions.get(region_hash)
        if region is None or name in region.cpfs:
            if owns:
                self._count("orch_skipped")
            return
        self.dep.add_cpf(region_hash, name)
        if owns:
            self._count("orch_scale_out")
            self._orch_trace("scale_out", action)
        self.sim.process(self._rebalance(), name="orch.rebalance")

    def _orch_scale_in(self, action: Dict[str, Any], owns: bool):
        region_hash, name = action["region"], action["cpf"]
        region = self.dep.region_map.regions.get(region_hash)
        if region is None or name not in region.cpfs:
            if owns:
                self._count("orch_skipped")
            return
        try:
            self.dep.remove_cpf(region_hash, name)
        except ValueError:
            # last CPF of the region or of its level-2 parent: the ring
            # guards refuse, the controller's optimistic pick is dropped
            if owns:
                self._count("orch_skipped")
            return
        if owns:
            self._count("orch_scale_in")
            self._orch_trace("scale_in", action)
        # drain: move every key the victim still holds, then decommission
        yield from self._rebalance()
        cpf = self.dep.cpfs.get(name)
        if cpf is not None and cpf.up:
            cpf.fail()
            if owns:
                self._count("orch_decommissioned")

    def _orch_upgrade_begin(self, action: Dict[str, Any], owns: bool):
        region_hash, name = action["region"], action["cpf"]
        region = self.dep.region_map.regions.get(region_hash)
        if region is None or name not in region.cpfs:
            if owns:
                self._count("orch_skipped")
            return
        try:
            self.dep.remove_cpf(region_hash, name)
        except ValueError:
            # a lone replica cannot be drained away; the replace phase
            # will restart it in place (brief outage, recovery path)
            if owns:
                self._count("orch_upgrade_undrained")
            return
        if owns:
            self._count("orch_upgrade_drained")
            self._orch_trace("upgrade_begin", action)
        yield from self._rebalance()

    def _orch_upgrade_replace(self, action: Dict[str, Any], owns: bool):
        region_hash, name = action["region"], action["cpf"]
        cpf = self.dep.cpfs.get(name)
        if cpf is None:
            if owns:
                self._count("orch_skipped")
            return
        # restart on the new version: a real NF restart clears the
        # store (CPF.fail does exactly that); repair fetches refill it
        if cpf.up:
            cpf.fail()
        cpf.recover()
        region = self.dep.region_map.regions.get(region_hash)
        if region is not None and name not in region.cpfs:
            self.dep.add_cpf(region_hash, name)
        if owns:
            self._count("orch_upgraded")
            self._orch_trace("upgrade_replace", action)
        yield from self._rebalance()

    def _orch_heal(self, action: Dict[str, Any], owns: bool) -> None:
        """Promote a crashed CPF's orphaned primaries; optionally restart it.

        This is the controller racing the paper's reactive two-level
        recovery: any UE whose next procedure would have paid the
        on-demand §4.2.5 failover instead finds an up-to-date backup
        already promoted.  Promotion is version-guarded — a backup below
        the UE's RYW floor is never promoted, so consistency is never
        traded for capacity.
        """
        name = action["cpf"]
        cpf = self.dep.cpfs.get(name)
        if cpf is None:
            if owns:
                self._count("orch_skipped")
            return
        promotions = 0
        if not cpf.up:
            for ue_id, placement in sorted(self.dep.placements_items()):
                if placement.primary != name:
                    continue
                slot = self._slot_for(ue_id)
                if slot is None or self.driver.busy[slot]:
                    continue
                need = self.driver.version[slot]
                for backup in placement.backups:
                    bcpf = self.dep.cpfs.get(backup)
                    if bcpf is None or not bcpf.up:
                        continue
                    entry = bcpf.store.get(ue_id)
                    if (
                        entry is not None
                        and entry.up_to_date
                        and entry.state.version >= need
                    ):
                        self.dep.promote(ue_id, backup)
                        promotions += 1
                        break
        if owns and promotions:
            self._count("orch_heal_promotions", promotions)
        if action.get("recover") and not cpf.up:
            self.dep.recover_cpf(name)
            if owns:
                self._count("orch_healed")
                self._orch_trace("heal", action)

    def _on_fault_op(self, now: float, op: str, target: str) -> None:
        """Injector listener: instant crash detection for the controller."""
        if op.startswith("fail_"):
            self._count("orch_crash_detected")

    def _orch_loop(self):
        """In-process controller ticks (single-process runs only).

        Each tick reads the local health row, lets the controller
        decide, applies the actions at the tick boundary, and — when a
        heartbeat stream is attached — emits the same epoch-aligned
        heartbeat row a sharded run would.
        """
        controller = self._controller
        tick = controller.policy.tick_s
        epoch = 0
        next_tick = tick
        while next_tick <= self.duration:
            if next_tick > self.sim.now:
                yield self.sim.timeout(next_tick - self.sim.now)
            epoch += 1
            healths = [self.health_row()]
            actions = controller.observe(epoch, self.sim.now, healths)
            self.apply_actions(actions)
            if self._stream is not None:
                self._stream.heartbeat(
                    epoch, self.sim.now, self.duration, healths
                )
            next_tick += tick

    # -- population --------------------------------------------------------

    def _bootstrap_population(self) -> None:
        rng = self.rngs.stream("scale.place")
        bss = self.spec.bss_per_region
        names: Dict[Tuple[str, int], str] = {}
        bootstrap = self.driver.bootstrap
        mobility = self.mobility
        if type(mobility).initial_tile is MobilityModel.initial_tile:
            # Hot path for the base uniform pick: inline both
            # ``Random.randrange`` rejection loops (bit-identical draw
            # sequence to ``_randbelow_with_getrandbits``) and cache the
            # name strings — this loop runs once per UE.
            tiles = mobility.tiles
            nt, kt = len(tiles), len(tiles).bit_length()
            kb = bss.bit_length()
            grb = rng.getrandbits
            sink = getattr(self.driver, "placement_sink", None)
            sink = sink() if sink is not None else None
            if sink is not None:
                # Lazy drivers take the index directly: same names
                # registered in the same first-appearance order, minus
                # a method call and a string-keyed lookup per UE.
                to_index, set_index = sink
                idxs: Dict[int, int] = {}
                for i in range(self.spec.n_ue):
                    r = grb(kt)
                    while r >= nt:
                        r = grb(kt)
                    b = grb(kb)
                    while b >= bss:
                        b = grb(kb)
                    key = r * bss + b
                    idx = idxs.get(key)
                    if idx is None:
                        idx = idxs[key] = to_index("bs-%s-%d" % (tiles[r], b))
                    set_index(i, idx)
                return
            inames: Dict[int, str] = {}
            for i in range(self.spec.n_ue):
                r = grb(kt)
                while r >= nt:
                    r = grb(kt)
                b = grb(kb)
                while b >= bss:
                    b = grb(kb)
                key = r * bss + b
                name = inames.get(key)
                if name is None:
                    name = inames[key] = "bs-%s-%d" % (tiles[r], b)
                bootstrap(i, name)
            return
        initial_tile = mobility.initial_tile
        randrange = rng.randrange
        for i in range(self.spec.n_ue):
            key = (initial_tile(rng), randrange(bss))
            name = names.get(key)
            if name is None:
                name = names[key] = "bs-%s-%d" % key
            bootstrap(i, name)

    def _spawn(self, i: int, proc: str, target_bs: Optional[str]) -> None:
        self._count("procedures_started")
        start = getattr(self.driver, "start_procedure", None)
        if start is not None:
            start(i, proc, target_bs)
            return
        self.sim.process(
            self.driver.run_procedure(i, proc, target_bs), name="scale." + proc
        )

    # -- the merged aggregated-Poisson arrival driver ----------------------

    def _population_n(self) -> int:
        """Population driving the aggregate arrival rates (local, sharded)."""
        return self.spec.n_ue

    def _traffic(self):
        spec, sim, n = self.spec, self.sim, self._population_n()
        svc_rng = self.rngs.stream("scale.svc")
        move_rng = self.rngs.stream("scale.move")
        tau_rng = self.rngs.stream("scale.tau")
        pick_rng = self.rngs.stream("scale.pick")
        svc_rate = n * spec.service_rate_per_ue
        tau_rate = n * spec.tau_rate_per_ue
        move_base = n * spec.mobility_rate_per_ue
        # mobility models with a wave window get a boosted rate inside
        # it; sample at the peak of the piecewise-constant intensity and
        # thin wherever the local rate sits below that peak (the
        # Lewis-Shedler candidate rate must dominate the true rate
        # everywhere — a boost < 1, a wave-window *lull*, therefore
        # samples at the base rate and thins inside the window, where
        # the old code under-sampled the whole run at base*boost).
        windowed = spec.mobility_model in ("commute", "flash_crowd")
        boost = spec.wave_mobility_boost if windowed else 1.0
        peak_mult = max(boost, 1.0)
        move_peak = move_base * peak_mult
        w0 = spec.wave_window[0] * self.duration
        w1 = spec.wave_window[1] * self.duration

        inf = float("inf")

        def draw(rng, rate: float) -> float:
            return rng.expovariate(rate) if rate > 0.0 else inf

        t_svc = draw(svc_rng, svc_rate)
        t_move = draw(move_rng, move_peak)
        t_tau = draw(tau_rng, tau_rate)
        while True:
            t = min(t_svc, t_move, t_tau)
            if t >= self.duration:
                return
            if t > sim.now:
                yield sim.timeout(t - sim.now)
            if t == t_svc:
                self._arrival_service(pick_rng)
                t_svc = t + draw(svc_rng, svc_rate)
            elif t == t_move:
                mult = boost if w0 <= t < w1 else 1.0
                # acceptance with probability mult/peak_mult; skip the
                # draw entirely at probability 1 so the boost >= 1 RNG
                # sequence (pinned by determinism witnesses) is
                # untouched by the boost < 1 fix
                accept = mult >= peak_mult or (
                    move_rng.random() * peak_mult < mult
                )
                if accept:
                    self._count("moves_accepted")
                    self._arrival_move(pick_rng, move_rng)
                else:
                    self._count("moves_thinned")
                t_move = t + draw(move_rng, move_peak)
            else:
                self._arrival_tau(pick_rng)
                t_tau = t + draw(tau_rng, tau_rate)

    def _class_count(self, lo: int, hi: int) -> int:
        """How many of the UEs in global slice [lo, hi) this engine drives."""
        return hi - lo

    def _pick_idle(
        self, pick_rng, lo: int = 0, hi: Optional[int] = None
    ) -> Optional[int]:
        # randrange(0, n) consumes exactly the same draw as randrange(n),
        # so class-ranged picks leave the legacy RNG sequence untouched
        i = pick_rng.randrange(lo, self.spec.n_ue if hi is None else hi)
        if self.driver.busy[i]:
            self._count("arrivals_skipped_busy")
            return None
        return i

    def _arrival_service(self, pick_rng, lo: int = 0, hi: Optional[int] = None) -> None:
        i = self._pick_idle(pick_rng, lo, hi)
        if i is None:
            return
        if not self.driver.attached[i]:
            # a previously aborted UE re-enters via attach
            self._count("reattach_arrivals")
            self._spawn(i, "attach", None)
            return
        self._spawn(i, "service_request", None)

    def _arrival_tau(self, pick_rng, lo: int = 0, hi: Optional[int] = None) -> None:
        i = self._pick_idle(pick_rng, lo, hi)
        if i is None or not self.driver.attached[i]:
            if i is not None:
                self._count("arrivals_skipped_detached")
            return
        self._spawn(i, "tau", None)

    def _arrival_move(
        self, pick_rng, move_rng, lo: int = 0, hi: Optional[int] = None
    ) -> None:
        i = self._pick_idle(pick_rng, lo, hi)
        if i is None or not self.driver.attached[i]:
            if i is not None:
                self._count("arrivals_skipped_detached")
            return
        bs_name = self.driver.bs_of(i)
        cur = bs_name.split("-")[1]
        nxt = self.mobility.next_tile(move_rng, cur, self.sim.now)
        bss = self.spec.bss_per_region
        if nxt is None or nxt == cur:
            if bss < 2:
                self._count("moves_no_target")
                return
            cur_k = int(bs_name.split("-")[2])
            k = (cur_k + 1 + pick_rng.randrange(bss - 1)) % bss
            self._count("moves_intra")
            self._spawn(i, "intra_handover", "bs-%s-%d" % (cur, k))
            return
        target_bs = "bs-%s-%d" % (nxt, pick_rng.randrange(bss))
        if target_bs not in self.dep.bss:  # pragma: no cover - defensive
            self._count("moves_no_target")
            return
        try:
            fast = self.dep.region_map.shares_level2(cur, nxt)
        except KeyError:
            fast = False
        if fast:
            self._count("moves_fast_handover")
            self._spawn(i, "fast_handover", target_bs)
        else:
            self._count("moves_handover")
            self._spawn(i, "handover", target_bs)

    # -- the measured traffic-model driver ---------------------------------

    def _model_streams(self):
        """Build every (arrival-times, handler) stream of the spec's model.

        One named RNG stream per (class, procedure) / storm / mobility
        process, so a stream's draw sequence never depends on how the
        others interleave — the whole schedule is a pure function of
        (model, spec).  The calibration suite consumes the identical
        ``process_stream``/``storm_times`` emitters.
        """
        spec = self.spec
        model = get_model(spec.traffic_model)
        scale = spec.traffic_rate_scale
        ranges = class_ranges(model, spec.n_ue)
        streams = []
        for cls in model.classes:
            lo, hi = ranges[cls.name]
            class_n = self._class_count(lo, hi)
            if class_n <= 0:
                continue
            pick_rng = self.rngs.stream("traffic.pick." + cls.name)
            for proc in cls.processes:
                rng = self.rngs.stream(
                    "traffic.%s.%s" % (cls.name, proc.procedure)
                )
                times = process_stream(
                    proc, class_n, self.duration, rng,
                    model=model, rate_scale=scale,
                )
                if proc.procedure == "service_request":
                    handler = self._handler_service(pick_rng, lo, hi)
                else:
                    handler = self._handler_tau(pick_rng, lo, hi)
                streams.append((times, handler))
            if cls.mobility_mean_s > 0:
                move_rng = self.rngs.stream(
                    "traffic.%s.mobility" % cls.name
                )
                move_dist = Exponential(
                    cls.mobility_mean_s / (class_n * scale)
                )
                times = _bounded_renewal(move_dist, self.duration, move_rng)
                streams.append(
                    (times, self._handler_move(pick_rng, move_rng, lo, hi))
                )
        for storm in model.storms:
            lo, hi = ranges[storm.device_class]
            rng = self.rngs.stream("traffic.storm." + storm.name)
            times = iter(
                storm_times(storm, self._class_count(lo, hi), self.duration, rng)
            )
            pick_rng = self.rngs.stream("traffic.pick." + storm.device_class)
            streams.append(
                (times, self._handler_storm(storm, pick_rng, lo, hi))
            )
        return streams

    def _handler_service(self, pick_rng, lo, hi):
        return lambda: self._arrival_service(pick_rng, lo, hi)

    def _handler_tau(self, pick_rng, lo, hi):
        return lambda: self._arrival_tau(pick_rng, lo, hi)

    def _handler_move(self, pick_rng, move_rng, lo, hi):
        return lambda: self._arrival_move(pick_rng, move_rng, lo, hi)

    def _handler_storm(self, storm, pick_rng, lo, hi):
        return lambda: self._arrival_storm(storm, pick_rng, lo, hi)

    def _arrival_storm(self, storm, pick_rng, lo, hi) -> None:
        self._count("storm_arrivals")
        self._count("storm_arrivals." + storm.name)
        i = self._pick_idle(pick_rng, lo, hi)
        if i is None:
            return
        proc = storm.procedure
        if proc == "attach":
            # mass re-registration: detached devices re-enter, already
            # attached ones re-register (the storm's whole point is the
            # redundant synchronized signaling)
            if not self.driver.attached[i]:
                self._count("storm_reattach")
            else:
                self._count("storm_reregister")
            self._spawn(i, "attach", None)
            return
        if not self.driver.attached[i]:
            # paged / timer-fired while detached: re-registration first
            self._count("reattach_arrivals")
            self._spawn(i, "attach", None)
            return
        self._spawn(i, proc, None)

    def _traffic_modeled(self):
        """Merged measured-model arrival process (replaces ``_traffic``)."""
        sim = self.sim
        streams = self._model_streams()
        handlers = [h for _t, h in streams]
        merged = heapq.merge(
            *[_tag(times, idx) for idx, (times, _h) in enumerate(streams)]
        )
        for t, idx in merged:
            if t >= self.duration:
                break
            if t > sim.now:
                yield sim.timeout(t - sim.now)
            handlers[idx]()

    # -- ring churn --------------------------------------------------------

    def _refresh_mobility(self) -> None:
        self.mobility.set_adjacency(
            tile_adjacency(sorted(self.dep.region_map.regions))
        )

    def _resolve_churn_tile(self, tile_spec: str) -> str:
        if tile_spec == "spare":
            if self.topo.spare_tile is None:
                raise ValueError("scenario churns 'spare' but city has none")
            return self.topo.spare_tile
        if tile_spec.startswith("fill:"):
            parents = sorted({t[:-1] for t in self.topo.tiles})
            parent = parents[int(tile_spec.split(":")[1])]
            used = {t for t in self.topo.tiles if t[:-1] == parent}
            for child in CHILD_ORDER:
                if parent + child not in used:
                    return parent + child
            raise ValueError("level-2 parent %s has no free child tile" % parent)
        return tile_spec

    def _churn(self):
        for frac, kind, tile_spec in sorted(self.spec.churn_events):
            at = frac * self.duration
            if at > self.sim.now:
                yield self.sim.timeout(at - self.sim.now)
            tile = self._resolve_churn_tile(tile_spec)
            if kind == "add":
                yield from self._churn_add(tile)
            elif kind == "remove":
                yield from self._churn_remove(tile)
            else:
                raise ValueError("unknown churn kind %r" % (kind,))

    def _churn_add(self, tile: str):
        if tile in self.dep.region_map.regions:
            self._count("churn_add_skipped")
            return
        self.dep.add_region(
            region_for_tile(
                tile, self.spec.cpfs_per_region, self.spec.bss_per_region
            )
        )
        self._count("regions_added")
        self._refresh_mobility()
        yield from self._rebalance()

    def _churn_remove(self, tile: str):
        if tile not in self.dep.region_map.regions:
            self._count("churn_remove_skipped")
            return
        # Stop steering traffic into the tile before draining it.
        remaining = [t for t in self.dep.region_map.regions if t != tile]
        self.mobility.set_adjacency(tile_adjacency(remaining))
        exits = [t for t in remaining if t != tile] or remaining
        full = tile_adjacency(sorted(self.dep.region_map.regions))
        neighbours = [t for t in full.get(tile, ()) if t in set(remaining)]
        if neighbours:
            exits = neighbours
        yield from self._evacuate(tile, exits)
        # Detached UEs have no serving region to hand over from; their
        # placements just dissolve (a later attach re-derives them).
        for ue_id, placement in list(self.dep.placements_items()):
            if placement.region == tile:
                self.dep.drop_placement(ue_id)
                self._count("placements_dropped")
        self.dep.retire_region(tile)
        self._count("regions_removed")
        yield from self._rebalance()

    def _evacuees(self, tile: str) -> List[int]:
        return [
            i
            for i in range(self.driver.n)
            if self.driver.attached[i]
            and self.driver.bs_of(i).split("-")[1] == tile
        ]

    def _evacuate(self, tile: str, exits: List[str]):
        """Re-home every UE served in ``tile`` via real handovers."""
        for attempt in range(3):
            evacuees = self._evacuees(tile)
            if not evacuees:
                return
            window = self.spec.rebalance_window_s
            procs = [
                self.sim.process(
                    self._rehome_one(i, tile, exits, window * j / len(evacuees)),
                    name="scale.rehome",
                )
                for j, i in enumerate(evacuees)
            ]
            for p in procs:
                yield p
        leftovers = self._evacuees(tile)
        if leftovers:  # pragma: no cover - three passes always drain
            self._count("evacuation_incomplete", len(leftovers))

    def _rehome_one(self, i: int, tile: str, exits: List[str], delay: float):
        try:
            if delay > 0.0:
                yield self.sim.timeout(delay)
            for _ in range(_BUSY_TRIES):
                if not self.driver.busy[i]:
                    break
                yield self.sim.timeout(_BUSY_POLL_S)
            else:
                self._count("rehome_busy_skipped")
                return
            if not self.driver.attached[i]:
                return
            cur = self.driver.bs_of(i).split("-")[1]
            if cur != tile:  # wandered out on its own
                return
            target_tile = exits[i % len(exits)]
            target_bs = "bs-%s-%d" % (
                target_tile,
                i % self.spec.bss_per_region,
            )
            try:
                fast = self.dep.region_map.shares_level2(cur, target_tile)
            except KeyError:
                fast = False
            proc = "fast_handover" if fast else "handover"
            yield from self.driver.run_procedure(i, proc, target_bs)
            self._count("rehomed")
        except Exception:  # pragma: no cover - evacuation must not wedge
            self._count("rehome_errors")

    # -- replica re-placement after ring churn -----------------------------

    def _rebalance(self):
        """Move the (consistent-hashing-small) set of re-owned keys.

        Fetches are staggered over ``rebalance_window_s`` so a churned-in
        CTA warms up without a stampede; each UE is re-placed atomically
        while marked busy so no procedure interleaves with the copy.
        """
        changed = self.dep.stale_placements()
        self._count("replacements_planned", len(changed))
        if not changed:
            return
        window = self.spec.rebalance_window_s
        procs = [
            self.sim.process(
                self._replace_one(ue_id, window * j / len(changed)),
                name="scale.replace",
            )
            for j, (ue_id, _p, _prim, _bkps) in enumerate(changed)
        ]
        for p in procs:
            yield p

    def _slot_for(self, ue_id: str) -> Optional[int]:
        """Driver slot of a cohort UE id (None if not driven here)."""
        return int(ue_id.split("-")[-1])

    def _replace_one(self, ue_id: str, delay: float):
        try:
            if delay > 0.0:
                yield self.sim.timeout(delay)
            i = self._slot_for(ue_id)
            if i is None:
                return
            for _ in range(_BUSY_TRIES):
                if not self.driver.busy[i]:
                    break
                yield self.sim.timeout(_BUSY_POLL_S)
            else:
                self._count("replace_busy_skipped")
                return
            placement = self.dep.placement_of(ue_id)
            if placement is None:
                return
            try:
                primary = self.dep.region_map.primary_for(ue_id, placement.region)
            except KeyError:
                return  # region itself went away; evacuation owns this UE
            backups = self.dep.region_map.replicas_for(
                ue_id,
                placement.region,
                self.dep.config.n_backups,
                self.dep.config.georep_level,
            )
            if primary == placement.primary and backups == placement.backups:
                return  # already converged (re-checked after the stagger)
            self.driver.busy[i] = 1
            try:
                ok = yield from self._copy_state(ue_id, placement, primary, backups)
                if not ok:
                    self._count("replace_fetch_failed")
                    return  # keep the old placement; nothing was torn down
                self.dep.apply_placement(ue_id, placement.region, primary, backups)
                for name, is_primary in [(primary, True)] + [
                    (b, False) for b in backups
                ]:
                    entry = self.dep.cpfs[name].store.get(ue_id)
                    if entry is not None:
                        entry.is_primary = is_primary
                self._count("replaced")
            finally:
                self.driver.busy[i] = 0
        except Exception:  # pragma: no cover - re-placement must not wedge
            self._count("replace_errors")

    def _copy_state(self, ue_id: str, placement, primary: str, backups: List[str]):
        """Repair-fetch up-to-date state onto every new holder."""
        slot = self._slot_for(ue_id)
        if slot is None:
            return False
        need_version = self.driver.version[slot]
        sources = [placement.primary] + list(placement.backups)
        for target in [primary] + list(backups):
            cpf = self.dep.cpfs.get(target)
            if cpf is None or not cpf.up:
                return False
            entry = cpf.store.get(ue_id)
            if (
                entry is not None
                and entry.up_to_date
                and entry.state.version >= need_version
            ):
                continue
            fetched = False
            for source in sources:
                if source == target:
                    continue
                src_cpf = self.dep.cpfs.get(source)
                if src_cpf is None or not src_cpf.up:
                    continue
                ok = yield from cpf.fetch_state_from(ue_id, source)
                if ok:
                    entry = cpf.store.get(ue_id)
                    if entry is not None and entry.state.version >= need_version:
                        fetched = True
                        break
            if not fetched:
                return False
        return True

    # -- run ---------------------------------------------------------------

    def prepare(self) -> None:
        """Install population, faults and arrival processes (no sim yet)."""
        self._bootstrap_population()
        self.injector.install()
        traffic = (
            self._traffic_modeled()
            if self.spec.traffic_model
            else self._traffic()
        )
        self.sim.process(traffic, name="scale.traffic")
        if self.spec.churn_events:
            self.sim.process(self._churn(), name="scale.churn")
        if self.orch_policy is not None:
            self.injector.add_listener(self._on_fault_op)
            if self._local_controller:
                from ..orch import Orchestrator

                self._controller = Orchestrator(self.orch_policy, self.duration)
                if self._stream is not None:
                    self._controller.attach_stream(self._stream)
                self.sim.process(self._orch_loop(), name="orch.tick")

    def run(self) -> ScaleResult:
        self.prepare()
        end = self.sim.run()
        result = self.finish(end)
        if self._controller is not None:
            # ad-hoc attrs, like result.obs_snapshot: the policy echo,
            # the full action log (the golden witness), and tick stats
            result.orch_policy = self._controller.policy.to_dict()
            result.orch_log = list(self._controller.log)
            result.orch_summary = self._controller.summary()
        return result

    def finish(self, end: float) -> ScaleResult:
        """Flush the lane trace and assemble the result after the sim ran."""
        flush = getattr(self.driver, "flush_trace", None)
        if flush is not None:
            flush()
        region_pct_ms: Dict[str, Dict[str, Dict[str, Optional[float]]]] = {}
        for (region, proc), sketch in sorted(self.sketches.items()):
            summary = sketch.summary()
            out = {"count": summary.get("count", 0.0)}
            for key, value in summary.items():
                if key != "count":
                    out[key] = None if value is None else value * 1e3
            region_pct_ms.setdefault(region, {})[proc] = out
        auditor = self.dep.auditor
        return ScaleResult(
            scenario=self.spec.name,
            mode=self.mode,
            n_ue=self.spec.n_ue,
            duration_s=self.duration,
            seed=self.spec.seed,
            end_time_s=end,
            regions_final=len(self.dep.region_map.regions),
            serves=auditor.serves,
            writes=auditor.writes,
            violations=len(auditor.violations),
            completed=self.driver.completed,
            aborted=self.driver.aborted,
            recovered=self.driver.recovered,
            reattached=self.driver.reattached,
            counters=dict(self.counters),
            fault_counters=dict(self.injector.fault_counters()),
            region_pct_ms=region_pct_ms,
            digest=self.trace.digest(),
            trace_events=len(self.trace),
            lane=(
                self.driver.lane_stats()
                if hasattr(self.driver, "lane_stats")
                else {}
            ),
            perf={
                "wall_s": time.perf_counter() - self._wall0,
                "peak_rss_kb": peak_rss_kb(),
            },
        )


# --------------------------------------------------------------------------- api


def run_scenario(
    scenario,
    n_ue: Optional[int] = None,
    duration_s: Optional[float] = None,
    seed: Optional[int] = None,
    mode: str = "cohort",
    obs=None,
    stream=None,
    verbose_trace: bool = False,
    shards: int = 1,
    shard_backend: str = "auto",
) -> ScaleResult:
    """Run one scenario (by name or :class:`ScenarioSpec`) to completion.

    ``shards > 1`` partitions the city by level-2 parent across that
    many shard engines (see :mod:`repro.scale.shard`) and merges the
    results deterministically; ``shards=1`` is exactly the single-process
    path, bit for bit.  ``stream`` (a
    :class:`~repro.obs.stream.HeartbeatStream`) enables the
    epoch-aligned NDJSON heartbeat feed on sharded runs; single-process
    runs emit only the final summary row.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    spec = spec.with_overrides(n_ue=n_ue, duration_s=duration_s, seed=seed)
    if shards != 1:
        from .shard import run_sharded

        return run_sharded(
            spec,
            mode=mode,
            shards=shards,
            backend=shard_backend,
            obs=obs,
            stream=stream,
            verbose_trace=verbose_trace,
        )
    result = _Engine(
        spec, mode=mode, obs=obs, verbose_trace=verbose_trace, stream=stream
    ).run()
    if stream is not None:
        stream.summary(result)
    return result


def _replicate_task(task: Tuple[ScenarioSpec, str]) -> ScaleResult:
    """Module-level so process pools can pickle it."""
    spec, mode = task
    return _Engine(spec, mode=mode).run()


def replicate_key(task: Tuple[ScenarioSpec, str]) -> Dict[str, Any]:
    spec, mode = task
    payload = asdict(spec)
    payload["mode"] = mode
    return payload


def run_replicates(
    scenario,
    seeds: List[int],
    n_ue: Optional[int] = None,
    duration_s: Optional[float] = None,
    mode: str = "cohort",
    jobs: int = 1,
    cache=None,
    report=None,
) -> List[ScaleResult]:
    """One run per seed, through the generic parallel runner + cache."""
    from ..experiments.parallel import run_tasks

    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    spec = spec.with_overrides(n_ue=n_ue, duration_s=duration_s)
    tasks = [(spec.with_overrides(seed=s), mode) for s in seeds]
    return run_tasks(
        tasks,
        _replicate_task,
        jobs=jobs,
        cache=cache,
        key_fn=replicate_key,
        kind="scale.replicate",
        report=report,
    )
