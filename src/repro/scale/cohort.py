"""Aggregated-UE cohort: population state in arrays, UEs as flyweights.

Simulating 100k+ UEs as long-lived :class:`~repro.core.ue.UE` objects
costs an object (plus dict) per UE for state that is four scalars.  The
cohort keeps the whole population in flat arrays — attached flag,
completed write version (the RYW reader version), serving-BS index,
busy flag, procedures-run counter — and materialises a UE object only
while one of its procedures is in flight, hydrating it from the arrays
and writing the scalars back on completion.

The hydrated shell runs the *identical* ``UE.execute`` code path, and
neither hydration nor write-back touches the simulator, so a cohort run
is bit-identical (EventTrace digest) to the same schedule driven
through N persistent UE objects — ``IndividualDriver`` exists so the
conformance test can prove exactly that.
"""

from __future__ import annotations

from array import array
from typing import Dict, Generator, List, Optional, Tuple

from ..core.ue import UE, ProcedureAborted, ProcedureOutcome
from ..sim.node import NodeFailed
from .lane import SAFE_FAULT_OPS, LaneRuntime, _Walk, hazard_windows

__all__ = ["CohortDriver", "IndividualDriver", "BatchedDriver"]


class CohortDriver:
    """Array-backed population of ``n`` UEs over a deployment.

    ``bs_names`` is the (growable) list of base stations UEs may be
    assigned to; per-UE state references it by index so 100k UEs don't
    hold 100k name strings.
    """

    mode = "cohort"

    def __init__(self, dep, bs_names: List[str], n: int, prefix: str = "c"):
        self.dep = dep
        self.n = n
        self.prefix = prefix
        self.bs_names: List[str] = list(bs_names)
        self._bs_index: Dict[str, int] = {b: i for i, b in enumerate(self.bs_names)}
        self.attached = bytearray(n)
        self.busy = bytearray(n)
        self.version = array("q", [0]) * n
        self.bs_idx = array("l", [0]) * n
        self.runs = array("l", [0]) * n
        # outcome counters (bounded; the per-outcome objects are not kept)
        self.completed = 0
        self.aborted = 0
        self.recovered = 0
        self.reattached = 0

    # -- identity ----------------------------------------------------------

    def ue_id(self, i: int) -> str:
        return "%s-%07d" % (self.prefix, i)

    def bs_of(self, i: int) -> str:
        return self.bs_names[self.bs_idx[i]]

    def bs_index(self, bs_name: str) -> int:
        """Index of ``bs_name``, registering it if new (ring churn)."""
        idx = self._bs_index.get(bs_name)
        if idx is None:
            idx = len(self.bs_names)
            self.bs_names.append(bs_name)
            self._bs_index[bs_name] = idx
        return idx

    # -- lifecycle ---------------------------------------------------------

    def bootstrap(self, i: int, bs_name: str) -> None:
        """Warm-attach UE ``i`` at ``bs_name`` (state only, no sim events)."""
        self.version[i] = self.dep.bootstrap_state(self.ue_id(i), bs_name)
        self.attached[i] = 1
        self.bs_idx[i] = self.bs_index(bs_name)

    def _hydrate(self, i: int) -> UE:
        ue = UE(self.dep, self.ue_id(i), self.bs_of(i))
        ue.attached = bool(self.attached[i])
        ue.completed_version = self.version[i]
        ue.procedures_run = self.runs[i]
        self.dep.adopt_ue(ue)
        return ue

    def _writeback(self, i: int, ue: UE) -> None:
        self.attached[i] = 1 if ue.attached else 0
        self.version[i] = ue.completed_version
        self.runs[i] = ue.procedures_run
        self.bs_idx[i] = self.bs_index(ue.bs_name)
        self.dep.release_ue(ue.ue_id)

    # -- procedures --------------------------------------------------------

    def run_procedure(
        self, i: int, proc: str, target_bs: Optional[str] = None
    ) -> Generator:
        """Process body: run one procedure for UE ``i``.

        Marks the UE busy in the cohort for the duration (the scenario
        driver skips arrivals to busy UEs), counts the outcome, and
        never raises — aborts are a counter, not a crash.
        """
        self.busy[i] = 1
        ue = self._hydrate(i)
        try:
            outcome = yield from ue.execute(proc, target_bs=target_bs)
        except (ProcedureAborted, NodeFailed, LookupError):
            self.aborted += 1
        else:
            if outcome.completed:
                self.completed += 1
            if outcome.recovered:
                self.recovered += 1
            if outcome.reattached:
                self.reattached += 1
        finally:
            self._writeback(i, ue)
            self.busy[i] = 0


class IndividualDriver(CohortDriver):
    """Same schedule, but N persistent UE objects (conformance witness).

    Keeps every :class:`UE` alive for the whole run the way the small
    experiment harnesses do.  Shares the cohort's arrays for busy
    bookkeeping so the scenario driver code is byte-for-byte the same;
    the only difference is where UE scalar state lives between
    procedures.
    """

    mode = "individual"

    def __init__(self, dep, bs_names: List[str], n: int, prefix: str = "c"):
        super().__init__(dep, bs_names, n, prefix)
        self._ues: Dict[int, UE] = {}

    def bootstrap(self, i: int, bs_name: str) -> None:
        ue = self.dep.new_ue(self.ue_id(i), bs_name)
        ue.attached = True
        ue.completed_version = self.dep.bootstrap_state(self.ue_id(i), bs_name)
        self._ues[i] = ue
        self.attached[i] = 1
        self.version[i] = ue.completed_version
        self.bs_idx[i] = self.bs_index(bs_name)

    def _hydrate(self, i: int) -> UE:
        return self._ues[i]

    def _writeback(self, i: int, ue: UE) -> None:
        # mirror the scalars so driver-side reads (busy checks, tile
        # lookups) see the same values in both modes
        self.attached[i] = 1 if ue.attached else 0
        self.version[i] = ue.completed_version
        self.runs[i] = ue.procedures_run
        self.bs_idx[i] = self.bs_index(ue.bs_name)


class BatchedDriver(CohortDriver):
    """Cohort driver with the batched analytic lane for steady-state load.

    Behaviour contract: identical :class:`~repro.scale.engine.ScaleResult`
    (counters, auditor verdict, PCT sketches, verbose EventTrace digest)
    as ``CohortDriver`` for the same spec and seed — the lane is a pure
    execution-speed optimisation.  Three mechanisms keep it exact:

    * **admission gates** — a procedure enters the lane only when its
      whole timeline is provably deterministic (see :meth:`_admit`);
      everything else runs through the unchanged discrete path;
    * **hazard windows** — no lane admissions near fault/churn instants,
      so no lane walk is ever in flight when node state flips;
    * **spill-on-contention** — a lane walk arriving at a genuinely busy
      server falls onto the ordinary queued path for that service and
      resumes at the true completion, so storm backlogs queue exactly.

    When the scenario has no faults, no churn, and no auditor history,
    population bootstrap is also deferred per-UE to first use (the
    arrays are filled eagerly; CPF store entries and placements
    materialise lazily) — invisible to results because bootstrap makes
    no simulator events and per-UE clocks are independent.
    """

    mode = "batched"

    def __init__(self, dep, bs_names: List[str], n: int, prefix: str = "c"):
        super().__init__(dep, bs_names, n, prefix)
        self.lane: Optional[LaneRuntime] = None
        self.stats: Dict[str, int] = {
            "admitted": 0,
            "fallback": 0,
            "walk_aborts": 0,
            "gate_misses": 0,
        }
        self._lazy = False
        self._booted = bytearray(n)
        self._hazards: List[Tuple[float, float]] = []

    # -- wiring -------------------------------------------------------------

    def setup_lane(self, engine) -> None:
        """Decide lane eligibility and lazy bootstrap for this run."""
        dep, spec = self.dep, engine.spec
        cfg = dep.config
        plan = engine.injector.plan
        self._lazy = (
            not dep.auditor.keep_history
            and not spec.fault_events
            and not spec.churn_events
            and cfg.heartbeat_interval_s == 0.0
            # a mutating orchestration policy re-places state mid-run;
            # lazy slots have no store entries to migrate
            and not getattr(engine, "orch_mutating", False)
        )
        if self._lazy:
            # Every bootstrap() call would set these same values; fill
            # them wholesale and pre-count the attach writes so
            # auditor.writes matches the eager path even for UEs never
            # touched by traffic.
            self.version[:] = array("q", [1]) * self.n
            self.attached[:] = b"\x01" * self.n
            dep.auditor.writes += self.n
        eligible = (
            cfg.sync_mode == "per_procedure"
            and not cfg.dpcm_mode
            and cfg.message_logging
            and not cfg.broadcast_replication
            and cfg.heartbeat_interval_s == 0.0
            and dep.obs is None
            and not plan.perturbations
            and all(e.op in SAFE_FAULT_OPS for e in plan.events)
            # a storm backlog could still be draining when a fault
            # fires, outliving any admission window — run such
            # scenarios fully discrete
            and not (spec.traffic_model and plan.events)
            # controller actions (ring changes, drains, heals) can land
            # inside any batch window; mutating policies stay discrete
            and not getattr(engine, "orch_mutating", False)
            and all(
                not link.bandwidth_bps and not link.jitter_frac
                for link in dep.links.values()
            )
        )
        if eligible:
            self.lane = LaneRuntime(dep, engine.trace)
            self.lane.driver = self
            self._hazards = hazard_windows(spec, plan.events)

    def placement_sink(self):
        """Population-loop fast path: ``(name_to_index, set_index)``.

        Only in lazy mode, where ``bootstrap()`` degenerates to a bare
        index write (everything else was prefilled in ``setup_lane``);
        ``None`` tells callers to go through ``bootstrap()`` per UE.
        """
        if not self._lazy:
            return None
        return self.bs_index, self.bs_idx.__setitem__

    def lane_stats(self) -> Dict[str, int]:
        out = dict(self.stats)
        out["enabled"] = 1 if self.lane is not None else 0
        out["lazy_bootstrap"] = 1 if self._lazy else 0
        if self.lane is not None:
            out["spills"] = self.lane.spills
        return out

    def flush_trace(self) -> None:
        if self.lane is not None:
            self.lane.flush_trace()

    # -- lazy population bootstrap -----------------------------------------

    def bootstrap(self, i: int, bs_name: str) -> None:
        if self._lazy:
            # bs assignment only; version/attached/auditor.writes were
            # prefilled wholesale in setup_lane, and CPF store entries,
            # placement, and the per-UE clock materialise on first use
            # via _ensure_boot.
            self.bs_idx[i] = self.bs_index(bs_name)
        else:
            super().bootstrap(i, bs_name)
            self._booted[i] = 1

    def _ensure_boot(self, i: int) -> None:
        if self._booted[i]:
            return
        # bootstrap_state re-counts the write that bootstrap() pre-counted
        self.dep.auditor.writes -= 1
        self.dep.bootstrap_state(self.ue_id(i), self.bs_of(i))
        self._booted[i] = 1

    # -- arrivals -----------------------------------------------------------

    def start_procedure(
        self, i: int, proc: str, target_bs: Optional[str] = None
    ) -> None:
        """Route one arrival: lane when provably exact, discrete otherwise."""
        self._ensure_boot(i)
        if (
            self.lane is not None
            and proc in self.lane.compiled
            and not self._in_hazard()
            and self._admit(i, proc, target_bs)
        ):
            return
        self.stats["fallback"] += 1
        self.dep.sim.process(
            self.run_procedure(i, proc, target_bs), name="scale." + proc
        )

    def _in_hazard(self) -> bool:
        now = self.dep.sim.now
        for lo, hi in self._hazards:
            if lo > now:
                return False  # sorted; nothing earlier can match
            if now <= hi:
                return True
        return False

    def _admit(self, i: int, proc: str, target_bs: Optional[str]) -> bool:
        """Try to start ``proc`` on the lane; False -> discrete fallback.

        The gates only need to be *sound* (admit nothing the lane cannot
        replay exactly); a False is never wrong, just slower.  A UE with
        unacked checkpoint records never enters the lane, so the
        concurrent-procedure flag below is a no-op for admitted walks
        and the replica-state gates see the same store the walk will.
        """
        dep = self.dep
        if self.busy[i] or not self.attached[i]:
            return False
        ue_id = self.ue_id(i)
        bs = dep.bss.get(self.bs_of(i))
        if bs is None:
            return False
        dep.ensure_placement(ue_id, bs.region)
        cta = dep.cta_of(ue_id)
        if cta is None or not cta.up:
            return False
        if cta.log.unacked_for(ue_id):
            # Starting now would make flag_concurrent_procedure spawn
            # repair traffic that interleaves event-by-event with this
            # procedure's own hops (the verbose trace records them in
            # event order); only the discrete path reproduces that.
            return False
        cta.flag_concurrent_procedure(ue_id)
        primary = dep.primary_of(ue_id)
        if primary is None:
            return False
        cpf = dep.cpfs.get(primary)
        if cpf is None or not cpf.up:
            return False
        entry = cpf.store.get(ue_id)
        if (
            entry is None
            or not entry.up_to_date
            or entry.state.version < self.version[i]
        ):
            return False
        steps, changes_cpf = self.lane.compiled[proc]
        tgt_bs = None
        if proc == "fast_handover":
            if target_bs is None:
                return False
            tgt_bs = dep.bss.get(target_bs)
            if tgt_bs is None or not self._upf_up(tgt_bs.region):
                return False
            try:
                tgt_name, fetch_from = dep.fast_target(
                    ue_id, tgt_bs.region, min_version=self.version[i]
                )
            except LookupError:
                return False
            if not dep.cpfs[tgt_name].up:
                return False
            if fetch_from is not None:
                # The lane replays the intra-level-2 fetch leg too, but
                # only when it provably succeeds: source alive and its
                # entry at least as new as the UE's last write.
                src = dep.cpfs.get(fetch_from)
                if src is None or not src.up:
                    return False
                sentry = src.store.get(ue_id)
                if (
                    sentry is None
                    or not sentry.up_to_date
                    or sentry.state.version < self.version[i]
                ):
                    return False
        else:
            if proc in ("service_request", "intra_handover") and not self._upf_up(
                bs.region
            ):
                return False
            if proc == "intra_handover":
                if target_bs is None:
                    return False
                tgt_bs = dep.bss.get(target_bs)
                if tgt_bs is None:
                    return False
        self.busy[i] = 1
        self.runs[i] += 1
        self.stats["admitted"] += 1
        walk = _Walk(
            i,
            ue_id,
            proc,
            steps,
            changes_cpf,
            target_bs,
            bs,
            tgt_bs,
            cta,
            cpf,
            self.version[i],
            ProcedureOutcome(proc, dep.sim.now, ue_id),
        )
        if proc == "fast_handover":
            walk.fast_tgt = tgt_name
            walk.fetch_from = fetch_from
        self.lane.launch(
            self.lane.walk(walk), on_abort=lambda: self._lane_abort(walk)
        )
        return True

    def _upf_up(self, region: str) -> bool:
        try:
            return self.dep.upf_for_region(region).server.up
        except KeyError:
            return False

    # -- lane completion hooks ---------------------------------------------

    def _lane_finish(self, w: _Walk) -> None:
        i = w.i
        version = self.version[i] + 1
        self.version[i] = version
        self.dep.auditor.record_write_completion(w.ue_id, version)
        w.outcome.completed = True
        self.completed += 1
        if w.changes_cpf and w.target_bs is not None:
            self.bs_idx[i] = self.bs_index(w.target_bs)
        self.busy[i] = 0

    def _lane_abort(self, w: _Walk) -> None:
        self.aborted += 1
        self.stats["walk_aborts"] += 1
        self.busy[w.i] = 0
