"""Aggregated-UE cohort: population state in arrays, UEs as flyweights.

Simulating 100k+ UEs as long-lived :class:`~repro.core.ue.UE` objects
costs an object (plus dict) per UE for state that is four scalars.  The
cohort keeps the whole population in flat arrays — attached flag,
completed write version (the RYW reader version), serving-BS index,
busy flag, procedures-run counter — and materialises a UE object only
while one of its procedures is in flight, hydrating it from the arrays
and writing the scalars back on completion.

The hydrated shell runs the *identical* ``UE.execute`` code path, and
neither hydration nor write-back touches the simulator, so a cohort run
is bit-identical (EventTrace digest) to the same schedule driven
through N persistent UE objects — ``IndividualDriver`` exists so the
conformance test can prove exactly that.
"""

from __future__ import annotations

from array import array
from typing import Dict, Generator, List, Optional

from ..core.ue import UE, ProcedureAborted
from ..sim.node import NodeFailed

__all__ = ["CohortDriver", "IndividualDriver"]


class CohortDriver:
    """Array-backed population of ``n`` UEs over a deployment.

    ``bs_names`` is the (growable) list of base stations UEs may be
    assigned to; per-UE state references it by index so 100k UEs don't
    hold 100k name strings.
    """

    mode = "cohort"

    def __init__(self, dep, bs_names: List[str], n: int, prefix: str = "c"):
        self.dep = dep
        self.n = n
        self.prefix = prefix
        self.bs_names: List[str] = list(bs_names)
        self._bs_index: Dict[str, int] = {b: i for i, b in enumerate(self.bs_names)}
        self.attached = bytearray(n)
        self.busy = bytearray(n)
        self.version = array("q", [0]) * n
        self.bs_idx = array("l", [0]) * n
        self.runs = array("l", [0]) * n
        # outcome counters (bounded; the per-outcome objects are not kept)
        self.completed = 0
        self.aborted = 0
        self.recovered = 0
        self.reattached = 0

    # -- identity ----------------------------------------------------------

    def ue_id(self, i: int) -> str:
        return "%s-%07d" % (self.prefix, i)

    def bs_of(self, i: int) -> str:
        return self.bs_names[self.bs_idx[i]]

    def bs_index(self, bs_name: str) -> int:
        """Index of ``bs_name``, registering it if new (ring churn)."""
        idx = self._bs_index.get(bs_name)
        if idx is None:
            idx = len(self.bs_names)
            self.bs_names.append(bs_name)
            self._bs_index[bs_name] = idx
        return idx

    # -- lifecycle ---------------------------------------------------------

    def bootstrap(self, i: int, bs_name: str) -> None:
        """Warm-attach UE ``i`` at ``bs_name`` (state only, no sim events)."""
        self.version[i] = self.dep.bootstrap_state(self.ue_id(i), bs_name)
        self.attached[i] = 1
        self.bs_idx[i] = self.bs_index(bs_name)

    def _hydrate(self, i: int) -> UE:
        ue = UE(self.dep, self.ue_id(i), self.bs_of(i))
        ue.attached = bool(self.attached[i])
        ue.completed_version = self.version[i]
        ue.procedures_run = self.runs[i]
        self.dep.adopt_ue(ue)
        return ue

    def _writeback(self, i: int, ue: UE) -> None:
        self.attached[i] = 1 if ue.attached else 0
        self.version[i] = ue.completed_version
        self.runs[i] = ue.procedures_run
        self.bs_idx[i] = self.bs_index(ue.bs_name)
        self.dep.release_ue(ue.ue_id)

    # -- procedures --------------------------------------------------------

    def run_procedure(
        self, i: int, proc: str, target_bs: Optional[str] = None
    ) -> Generator:
        """Process body: run one procedure for UE ``i``.

        Marks the UE busy in the cohort for the duration (the scenario
        driver skips arrivals to busy UEs), counts the outcome, and
        never raises — aborts are a counter, not a crash.
        """
        self.busy[i] = 1
        ue = self._hydrate(i)
        try:
            outcome = yield from ue.execute(proc, target_bs=target_bs)
        except (ProcedureAborted, NodeFailed, LookupError):
            self.aborted += 1
        else:
            if outcome.completed:
                self.completed += 1
            if outcome.recovered:
                self.recovered += 1
            if outcome.reattached:
                self.reattached += 1
        finally:
            self._writeback(i, ue)
            self.busy[i] = 0


class IndividualDriver(CohortDriver):
    """Same schedule, but N persistent UE objects (conformance witness).

    Keeps every :class:`UE` alive for the whole run the way the small
    experiment harnesses do.  Shares the cohort's arrays for busy
    bookkeeping so the scenario driver code is byte-for-byte the same;
    the only difference is where UE scalar state lives between
    procedures.
    """

    mode = "individual"

    def __init__(self, dep, bs_names: List[str], n: int, prefix: str = "c"):
        super().__init__(dep, bs_names, n, prefix)
        self._ues: Dict[int, UE] = {}

    def bootstrap(self, i: int, bs_name: str) -> None:
        ue = self.dep.new_ue(self.ue_id(i), bs_name)
        ue.attached = True
        ue.completed_version = self.dep.bootstrap_state(self.ue_id(i), bs_name)
        self._ues[i] = ue
        self.attached[i] = 1
        self.version[i] = ue.completed_version
        self.bs_idx[i] = self.bs_index(bs_name)

    def _hydrate(self, i: int) -> UE:
        return self._ues[i]

    def _writeback(self, i: int, ue: UE) -> None:
        # mirror the scalars so driver-side reads (busy checks, tile
        # lookups) see the same values in both modes
        self.attached[i] = 1 if ue.attached else 0
        self.version[i] = ue.completed_version
        self.runs[i] = ue.procedures_run
        self.bs_idx[i] = self.bs_index(ue.bs_name)
