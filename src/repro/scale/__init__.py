"""City-scale sharded deployment harness (paper §4.3 at population scale).

``repro.scale`` instantiates K CTAs x M level-2 regions from geo-hash
tiles — placement is driven entirely by ``geo.regions``/``geo.ring``,
never hand-wired — routes mobility-model traffic across region
boundaries, supports ring membership churn mid-run, and sustains 100k+
modeled UEs through the aggregated-UE cohort model plus streaming
percentile sketches.  Entry point: ``python -m repro scale <scenario>``.
"""

from .cohort import CohortDriver
from .engine import ScaleResult, run_replicates, run_scenario
from .scenarios import SCENARIOS, ScenarioSpec, get_scenario
from .shard import ShardMap, run_sharded, shard_lookahead
from .topology import CityTopology, build_city

__all__ = [
    "CityTopology",
    "build_city",
    "ScenarioSpec",
    "SCENARIOS",
    "get_scenario",
    "CohortDriver",
    "ScaleResult",
    "run_scenario",
    "run_replicates",
    "ShardMap",
    "run_sharded",
    "shard_lookahead",
]
