"""Batched cohort lane: analytic advancement of steady-state procedures.

At city scale the discrete-event path spends most of its wall-clock on
the machinery of idle-load procedures whose timing is fully
deterministic: with the Neutrino config every hop latency is a constant
(no jitter, no bandwidth term), every service time is a pure function
of ``(message, codec)``, and — whenever the servers involved are
uncontended — completion instants can be computed in closed form.

The lane compiles the four steady-state procedures (``service_request``,
``tau``, ``intra_handover``, ``fast_handover``) into *timed command
streams*: plain generators that yield

* ``("srv", t, server, service, pre)`` — at simulated time ``t`` run the
  optional ``pre`` mutation hook, then either book the service interval
  analytically (:meth:`~repro.sim.node.Server.reserve`, when the server
  is idle or already express-reserved) and resume the generator inline
  with the completion instant, or **spill** onto the ordinary queued
  path (``Server.submit``) and resume at the real completion — so
  contention, storm backlogs, and FIFO ordering behave exactly like the
  discrete path;
* ``("at", t)`` — resume at exactly simulated time ``t`` (state
  mutations that are externally observable at a precise instant: log
  appends and pruning, snapshot installs, ACKs, PCT marks, the
  completion commit).

Exactness contract: a lane walk performs the same state mutations as
``UE.execute`` at the same simulated instants, bumps the same counters,
and buffers the same verbose-trace hop records (merged and time-sorted
before the digest is taken).  Anything the lane cannot prove safe —
arrivals near a fault/churn window, missing or outdated state, fast
handovers that would need a fetch, every other procedure — is simply
not admitted and runs through the unchanged discrete driver.  The
cohort-vs-batched conformance tests pin full-result equality including
the verbose EventTrace digest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.cpf import SNAPSHOT_WIRE_BYTES
from ..core.ue import ProcedureOutcome
from ..core.upf import Session
from ..faults.trace import TraceRecord
from ..messages.registry import CATALOG

__all__ = ["LaneRuntime", "LANE_PROCS"]

#: procedures the lane knows how to compile (never attach/re_attach —
#: those create state — and never the full cross-level-2 handover,
#: whose migration leg negotiates target CPFs dynamically).
LANE_PROCS = ("service_request", "tau", "intra_handover", "fast_handover")

#: fault ops the lane can coexist with (admissions are hazard-gated
#: around their firing times; every other op disables the lane).
SAFE_FAULT_OPS = frozenset(
    ("fail_cpf", "recover_cpf", "fail_cta", "recover_cta")
)

#: half-width of the admission exclusion window around a fault op.
FAULT_SLACK_S = 0.25
#: admission exclusion lead-in before a churn event.
CHURN_PRE_S = 0.05
#: extra tail after a churn "add" rebalance window.
CHURN_POST_S = 1.0

_SUSPENDED = object()


class _WalkAbort(Exception):
    """A lane walk hit a condition the discrete path treats as abort."""


class _Walk:
    """Mutable per-procedure walk state threaded through the step code."""

    __slots__ = (
        "i",
        "ue_id",
        "proc",
        "steps",
        "changes_cpf",
        "target_bs",
        "bs",
        "tgt_bs",
        "cta",
        "cpf",
        "serving",
        "migrated_to",
        "last_clock",
        "clock",
        "reader_version",
        "outcome",
        "fast_tgt",
        "fetch_from",
    )

    def __init__(self, i, ue_id, proc, steps, changes_cpf, target_bs,
                 bs, tgt_bs, cta, cpf, reader_version, outcome):
        self.i = i
        self.ue_id = ue_id
        self.proc = proc
        self.steps = steps
        self.changes_cpf = changes_cpf
        self.target_bs = target_bs
        self.bs = bs
        self.tgt_bs = tgt_bs
        self.cta = cta
        self.cpf = cpf
        self.serving = None
        self.migrated_to = None
        self.last_clock = 0
        self.clock = 0
        self.reader_version = reader_version
        self.outcome = outcome
        self.fast_tgt = None
        self.fetch_from = None


class _StepC:
    """Per-step compile-time constants (sizes and service times)."""

    __slots__ = (
        "kind",
        "at_target",
        "ends_pct",
        "req",
        "resp",
        "req_size",
        "resp_size",
        "up_req",
        "dn_req",
        "up_resp",
        "dn_resp",
        "svc_cpf",
        "svc_cpf_resp",
        "svc_encode",
        "svc_decode",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, None)


class LaneRuntime:
    """Compiled timelines + the trampoline that drives lane generators."""

    def __init__(self, dep, trace):
        self.dep = dep
        self.sim = dep.sim
        self.trace = trace
        self.verbose = trace.verbose
        self.buffered: List[TraceRecord] = []
        self.spills = 0
        self.driver = None  # set by BatchedDriver
        self._eh = None  # lazily: CPF-serve steps are time-free iff
        # the auditor keeps no history (resolved on first walk; the
        # engine sets keep_history after deployment construction)
        cfg = dep.config
        cost = cfg.cost_model
        codec = cfg.codec
        self._codec = codec
        self._cost = cost
        self.links = dep.links
        lat = cfg.latency
        self.l_ue_bs = lat.ue_bs
        self.l_bs_cta = lat.bs_cta
        self.l_cta_cpf = lat.cta_cpf
        self.l_cpf_upf = lat.cpf_upf
        self._lat: Dict[str, float] = {
            name: link.latency_s for name, link in dep.links.items()
        }
        self.svc_ingest = cfg.cta_forward_s + cfg.log_append_s
        self.svc_respond = cfg.cta_forward_s
        self.checkpoint_lock = cfg.checkpoint_lock_s
        self.replica_apply = cfg.replica_apply_s
        self.ship_serialize = cost.serialize_cost(codec, 16)
        self.compiled: Dict[str, Tuple[Tuple[_StepC, ...], bool]] = {}
        for name in LANE_PROCS:
            compiled = self._compile(dep.spec(name))
            if compiled is not None:
                self.compiled[name] = compiled

    # -- compile ------------------------------------------------------------

    def _compile(self, spec) -> Optional[Tuple[Tuple[_StepC, ...], bool]]:
        cost, codec = self._cost, self._codec
        ser = lambda m: cost.serialize_cost(codec, CATALOG.element_count(m))
        deser = lambda m: cost.deserialize_cost(codec, CATALOG.element_count(m))
        out: List[_StepC] = []
        for step in spec.steps:
            c = _StepC()
            c.at_target = step.at_target
            c.ends_pct = step.ends_pct
            c.req, c.resp = step.request, step.response
            if step.kind in ("ue_message", "ue_exchange"):
                c.kind = 0
                c.req_size = CATALOG.composed_wire_size(
                    c.req, step.request_nas, codec
                )
                c.up_req = ser(c.req)
                # handle_uplink service (per_procedure mode: no lock term)
                c.svc_cpf = cost.base_process_s + deser(c.req)
                if c.resp is not None:
                    c.svc_cpf += ser(c.resp)
                    c.resp_size = CATALOG.composed_wire_size(
                        c.resp, step.response_nas, codec
                    )
                    c.dn_resp = deser(c.resp)
            elif step.kind == "cpf_bs":
                c.kind = 1
                c.req_size = CATALOG.composed_wire_size(
                    c.req, step.request_nas, codec
                )
                c.svc_encode = cost.base_process_s * 0.5 + ser(c.req)
                c.dn_req = deser(c.req)
                if c.resp is not None:
                    c.resp_size = CATALOG.wire_size(c.resp, codec)
                    c.up_resp = ser(c.resp)
                    c.svc_cpf_resp = cost.base_process_s + deser(c.resp)
            elif step.kind == "cpf_upf":
                if c.req != "ModifyBearerRequest":
                    return None  # only bearer updates have a known effect
                c.kind = 2
                c.req_size = CATALOG.wire_size(c.req, codec)
                c.svc_encode = cost.base_process_s * 0.5 + ser(c.req)
                if c.resp is not None:
                    c.resp_size = CATALOG.wire_size(c.resp, codec)
                    c.svc_decode = deser(c.resp)
            else:
                return None  # cpf_cpf migration legs stay discrete
            out.append(c)
        return tuple(out), spec.changes_cpf

    # -- trampoline ---------------------------------------------------------

    def launch(self, gen, on_abort=None) -> None:
        self._advance(gen, None, on_abort)

    def _advance(self, gen, value, on_abort) -> None:
        # Quiet-window fast path, used throughout the loop: when no
        # other callback can run before a future instant ``t`` (the
        # immediate queue is empty and the heap head is strictly later)
        # and the yield site flagged itself time-free (no submit hook,
        # resume code stamps no wall clock), whatever a scheduled
        # dispatch would do at ``t`` can be done now — world state is
        # frozen until ``t``, so every gate reads the exact state it
        # would read then, and nothing can observe the early effects.
        sim = self.sim
        imm = sim._immediate
        heap = sim._heap
        send = gen.send
        while True:
            try:
                cmd = send(value)
            except StopIteration:
                return
            except _WalkAbort:
                if on_abort is not None:
                    on_abort()
                return
            t = cmd[1]
            if cmd[0] == "at":
                if t <= sim.now:
                    value = None
                    continue
                if (
                    len(cmd) == 3
                    and cmd[2]
                    and not imm
                    and (not heap or heap[0][0] > t)
                ):
                    value = None
                    continue
                sim.schedule_at(t, self._advance, gen, None, on_abort)
                return
            if t > sim.now:
                if (
                    len(cmd) == 6
                    and cmd[5]
                    and not imm
                    and (not heap or heap[0][0] > t)
                ):
                    server = cmd[2]
                    if server.up and (
                        server._reserved_until > sim.now
                        or len(server.queue._getters) == server.cores
                    ):
                        value = server.reserve(cmd[3], at=t)
                        continue
                sim.schedule_at(t, self._dispatch, gen, cmd, on_abort)
                return
            value = self._dispatch_inline(gen, cmd, on_abort)
            if value is _SUSPENDED:
                return

    def _dispatch(self, gen, cmd, on_abort) -> None:
        value = self._dispatch_inline(gen, cmd, on_abort)
        if value is not _SUSPENDED:
            self._advance(gen, value, on_abort)

    def _dispatch_inline(self, gen, cmd, on_abort):
        # ("srv", t, server, service, pre); wall clock == t here.
        server, service, pre = cmd[2], cmd[3], cmd[4]
        if not server.up:
            self._abort(gen, on_abort)
            return _SUSPENDED
        if pre is not None:
            pre()
        # Truly idle == every worker parked on queue.get().  Checking
        # ``busy``/queue length instead would cut in line at a completion
        # instant: the freed worker has already popped its next job but
        # not yet resumed (busy == 0, queue empty), and the cohort path
        # FIFOs behind that in-limbo job.
        if (
            server._reserved_until > self.sim.now
            or len(server.queue._getters) == server.cores
        ):
            return server.reserve(service)
        # Real contention: fall onto the queued path and resume at the
        # true completion instant.
        self.spills += 1
        ev = server.submit(service)

        def _resume(ev):
            if ev.ok:
                self._advance(gen, self.sim.now, on_abort)
            else:
                self._abort(gen, on_abort)

        ev.add_callback(_resume)
        return _SUSPENDED

    def _abort(self, gen, on_abort) -> None:
        gen.close()
        if on_abort is not None:
            on_abort()

    # -- hop accounting -----------------------------------------------------

    def _hop(self, name: str, nbytes: int, t: float) -> None:
        """Clean-path link traversal: counters now, trace at send time.

        Matches ``FaultInjector.transit_event``'s clean path exactly
        (the lane is only enabled with no perturbations/partitions and
        all links up); the record's *time* field is the logical send
        instant, records are merged and time-sorted before digesting.
        """
        link = self.links[name]
        link.messages_sent += 1
        link.bytes_sent += nbytes
        if self.verbose:
            self.buffered.append(
                TraceRecord(t, "msg", (("hop", link.name), ("nbytes", nbytes)))
            )

    def flush_trace(self) -> None:
        """Merge buffered lane records into the trace, time-ordered."""
        if self.buffered:
            self.trace.records.extend(self.buffered)
            self.trace.records.sort(key=lambda r: r.time)
            self.buffered = []

    # -- walk body ----------------------------------------------------------

    def walk(self, w: _Walk):
        """Generator mirroring ``UE._run_steps_inner`` for one procedure."""
        dep = self.dep
        if self._eh is None:
            self._eh = not dep.auditor.keep_history
        t = self.sim.now
        for c in w.steps:
            if c.at_target and w.migrated_to is None and w.proc == "fast_handover":
                # The Fast Handover target (§4.3) was resolved at
                # admission; the answer cannot change by the time the
                # discrete path would resolve it: the UE's own entries
                # only move through its own (serialized) procedures and
                # its fully-ACKed checkpoints — the unacked-record gate
                # rules out in-flight ships and repairs — and node/ring
                # state is pinned by the hazard windows.
                tgt_name = w.fast_tgt
                if w.fetch_from is not None:
                    t = yield from self._fetch_state(w, tgt_name, w.fetch_from, t)
                w.migrated_to = tgt_name
                w.serving = dep.cpfs[tgt_name]
            if c.kind == 0:
                t = yield from self._step_uplink(w, c, t)
            elif c.kind == 1:
                t = yield from self._step_cpf_bs(w, c, t)
            else:
                t = yield from self._step_cpf_upf(w, c, t)
        yield from self._tail(w, t)

    def _gate_miss(self, why: str):
        if self.driver is not None:
            self.driver.stats["gate_misses"] += 1
        raise _WalkAbort(why)

    def _fetch_state(self, w: _Walk, tgt_name: str, fetch_from: str, t: float):
        """``CPF.fetch_state_from`` replayed analytically (§4.3 fetch leg).

        Admission verified the source CPF held an up-to-date entry at
        least as new as the UE's last write, and only the UE's own
        (serialized) procedures mutate that entry — so the re-checks
        below can only fail if a gate was unsound, which the witnesses
        pin via ``gate_misses == 0``.
        """
        dep = self.dep
        tgt = dep.cpfs.get(tgt_name)
        src = dep.cpfs.get(fetch_from)
        if tgt is None or not tgt.up or src is None or not src.up:
            self._gate_miss("fetch target regressed")
        hop = dep.cpf_hop(tgt_name, fetch_from)
        lat = self._lat[hop]
        self._hop(hop, 64, t)  # request
        t += lat
        # The source entry is read here, before the request's logical
        # arrival at ``t``; stable for the same reason the admission-time
        # fast-target resolution is (see walk()).
        entry = src.store.get(w.ue_id)
        if (
            entry is None
            or not entry.up_to_date
            or entry.state.version < w.reader_version
        ):
            self._gate_miss("fetch source stale")
        snapshot = entry.state.copy()
        clock = entry.synced_clock
        self._hop(hop, SNAPSHOT_WIRE_BYTES, t)
        t += lat
        if not tgt.up:
            self._gate_miss("fetch target died")
        t = yield ("srv", t, tgt.sync_server, self.replica_apply, None, True)
        # Early at resume: the entry is per-UE and the UE is busy for
        # the whole walk; install_snapshot ignores strictly-older clocks.
        tgt.store.install_snapshot(w.ue_id, snapshot, clock)
        tgt.snapshots_applied += 1
        return t

    def _ingest_pre(self, w: _Walk, cta, msg: str, size: int):
        """CTA ingest mutations, run at the exact submit instant."""
        dep = self.dep

        def pre():
            clock = dep.next_clock(w.ue_id)
            cta.clock.tick()
            cta.log.append(clock, w.ue_id, msg, size)
            w.clock = clock

        return pre

    def _serve(self, w: _Walk, cpf) -> None:
        """CPF uplink-handling mutations (``CPF.handle_uplink``'s body).

        Safe to run at the submit instant rather than job completion:
        every touched field is per-UE and the UE is busy for the whole
        walk, and ``install_snapshot`` ignores strictly-older clocks so
        the early ``synced_clock`` bump cannot shadow a later one.
        """
        cpf.messages_handled += 1
        entry = cpf.store.get(w.ue_id)
        if (
            entry is None
            or not entry.up_to_date
            or entry.state.version < w.reader_version
        ):
            # admission guaranteed this cannot happen; divergence is
            # surfaced via the gate_misses stat the witnesses pin at 0.
            self.dep.auditor.record_reattach_forced(w.ue_id, cpf.name)
            if self.driver is not None:
                self.driver.stats["gate_misses"] += 1
            raise _WalkAbort("stale entry")
        entry.is_primary = True
        self.dep.auditor.record_serve(
            w.ue_id, w.reader_version, entry.state.version, cpf.name
        )
        entry.state.apply_message()
        if w.clock > entry.synced_clock:
            entry.synced_clock = w.clock

    def _mark_pct(self, w: _Walk, t: float) -> None:
        outcome = w.outcome
        if outcome.pct is None:
            outcome.pct = t - outcome.started_at
            self.dep.record_pct(outcome)

    def _step_uplink(self, w: _Walk, c: _StepC, t: float):
        bs = w.tgt_bs if c.at_target else w.bs
        cpf = w.serving if c.at_target else w.cpf
        cta = w.cta
        self._hop("ue_bs", c.req_size, t)
        t += self.l_ue_bs
        bs.uplink_messages += 1
        t += c.up_req
        self._hop("bs_cta", c.req_size, t)
        t += self.l_bs_cta
        t = yield ("srv", t, cta.server, self.svc_ingest,
                   self._ingest_pre(w, cta, c.req, c.req_size))
        if w.clock > w.last_clock:
            w.last_clock = w.clock
        self._hop("cta_cpf", c.req_size, t)
        t += self.l_cta_cpf
        # _serve stamps wall clock only into the causal history; with
        # history off the resume is time-free (quiet-window eligible)
        t = yield ("srv", t, cpf.server, c.svc_cpf, None, self._eh)
        self._serve(w, cpf)
        if c.resp is not None:
            self._hop("cta_cpf", c.resp_size, t)
            t += self.l_cta_cpf
            t = yield ("srv", t, cta.server, self.svc_respond, None, True)
            self._hop("bs_cta", c.resp_size, t)
            t += self.l_bs_cta
            bs.downlink_messages += 1
            t += c.dn_resp
            self._hop("ue_bs", c.resp_size, t)
            t += self.l_ue_bs
        if c.ends_pct:
            # resume only feeds the quantile sketches (time-free)
            yield ("at", t, True)
            self._mark_pct(w, t)
        return t

    def _step_cpf_bs(self, w: _Walk, c: _StepC, t: float):
        bs = w.tgt_bs if c.at_target else w.bs
        cpf = w.serving if c.at_target else w.cpf
        cta = w.cta
        t = yield ("srv", t, cpf.server, c.svc_encode, None, True)
        self._hop("cta_cpf", c.req_size, t)
        t += self.l_cta_cpf
        t = yield ("srv", t, cta.server, self.svc_respond, None, True)
        self._hop("bs_cta", c.req_size, t)
        t += self.l_bs_cta
        bs.downlink_messages += 1
        t += c.dn_req
        self._hop("ue_bs", c.req_size, t)
        t += self.l_ue_bs
        if c.ends_pct:
            # resume only feeds the quantile sketches (time-free)
            yield ("at", t, True)
            self._mark_pct(w, t)
        if c.resp is not None:
            bs.uplink_messages += 1
            t += c.up_resp
            self._hop("bs_cta", c.resp_size, t)
            t += self.l_bs_cta
            t = yield ("srv", t, cta.server, self.svc_ingest,
                       self._ingest_pre(w, cta, c.resp, c.resp_size))
            if w.clock > w.last_clock:
                w.last_clock = w.clock
            self._hop("cta_cpf", c.resp_size, t)
            t += self.l_cta_cpf
            t = yield ("srv", t, cpf.server, c.svc_cpf_resp, None, self._eh)
            self._serve(w, cpf)
        return t

    def _step_cpf_upf(self, w: _Walk, c: _StepC, t: float):
        bs = w.tgt_bs if c.at_target else w.bs
        cpf = w.serving if c.at_target else w.cpf
        upf = self.dep.upf_for_region(bs.region)
        t = yield ("srv", t, cpf.server, c.svc_encode, None, True)
        self._hop("cpf_upf", c.req_size, t)
        t += self.l_cpf_upf
        t = yield ("srv", t, upf.server, upf.service_s, None, True)
        # ModifyBearerRequest effect (UPF.program); per-UE-private state,
        # so applying it at the submit instant is unobservable.
        session = upf.sessions.get(w.ue_id)
        if session is None:
            upf._next_teid += 1
            session = Session(w.ue_id, upf._next_teid, bs.name)
            upf.sessions[w.ue_id] = session
        session.bs_id = bs.name
        session.active = True
        if c.resp is not None:
            self._hop("cpf_upf", c.resp_size, t)
            t += self.l_cpf_upf
            t = yield ("srv", t, cpf.server, c.svc_decode, None, True)
        if c.ends_pct:
            # resume only feeds the quantile sketches (time-free)
            yield ("at", t, True)
            self._mark_pct(w, t)
        return t

    def _tail(self, w: _Walk, t: float):
        """Completion commit: switch, lock, checkpoint, version, ACKs."""
        dep = self.dep
        yield ("at", t)
        serving_name = w.migrated_to or dep.primary_of(w.ue_id)
        if w.changes_cpf and w.target_bs is not None:
            dep.switch_region(w.ue_id, w.migrated_to, w.target_bs)
        serving = dep.cpfs.get(serving_name) if serving_name else None
        if serving is not None and serving.up:
            t = yield ("srv", t, serving.server, self.checkpoint_lock, None)
            yield ("at", t)
            replicas: List[str] = []
            entry = serving.store.get(w.ue_id)
            if entry is not None:
                entry.state.complete_procedure(w.proc)
                if w.last_clock > entry.synced_clock:
                    entry.synced_clock = w.last_clock
                replicas = [
                    r for r in dep.replicas_of(w.ue_id) if r != serving.name
                ]
                if replicas:
                    snapshot = entry.state.copy()
                    serving.checkpoints_sent += 1
                    for replica_name in replicas:
                        self.launch(self._ship(
                            serving, replica_name, w.ue_id, snapshot,
                            w.last_clock, t,
                        ))
            cta = dep.cta_of(w.ue_id)
            if cta is not None and cta.up:
                cta.procedure_completed(w.ue_id, w.last_clock, replicas)
        self.driver._lane_finish(w)

    def _ship(self, serving, replica_name, ue_id, snapshot, last_clock, t0):
        """One checkpoint shipment (``CPF._ship_inner``); aborts silent.

        All legs except the final ACK are flagged time-free for the
        quiet-window fast path: their resume code only reads frozen
        state and installs a per-UE snapshot nothing can observe before
        its instant.  The ACK stays scheduled — ``log.ack`` prunes and
        re-samples the time-weighted log-size probe at the wall clock.
        """
        dep = self.dep
        t = yield ("srv", t0, serving.sync_server, self.ship_serialize, None,
                   True)
        hop = dep.cpf_hop(serving.name, replica_name)
        self._hop(hop, SNAPSHOT_WIRE_BYTES, t)
        t += self._lat[hop]
        yield ("at", t, True)
        replica = dep.cpfs.get(replica_name)
        if replica is None or not replica.up:
            return  # replica down; its ACK never arrives (§4.2.4)
        t = yield ("srv", t, replica.sync_server, self.replica_apply, None,
                   True)
        yield ("at", t, True)
        replica.store.install_snapshot(ue_id, snapshot, last_clock)
        replica.snapshots_applied += 1
        # ACK back to the UE's CTA, bound after the apply like the
        # discrete path (a concurrent switch_region retargets it).
        cta = dep.cta_of(ue_id)
        self._hop("cta_cpf", 64, t)
        t += self.l_cta_cpf
        yield ("at", t)
        if cta is not None and cta.up:
            cta.log.ack(ue_id, last_clock, replica_name)


def hazard_windows(spec, plan_events) -> List[Tuple[float, float]]:
    """Admission exclusion intervals from fault + churn schedules.

    Lane walks complete within microseconds-to-milliseconds of their
    admission (no storm contention can extend them past the slack:
    storm-plus-fault scenarios disable the lane entirely), so excluding
    admissions in a generous window around every state-mutating op
    guarantees no lane walk is in flight when one fires.
    """
    windows: List[Tuple[float, float]] = []
    for event in plan_events:
        windows.append((event.at - FAULT_SLACK_S, event.at + FAULT_SLACK_S))
    for frac, kind, _tile in spec.churn_events:
        at = frac * spec.duration_s
        if kind == "remove":
            # retire time depends on evacuation progress; exclude the
            # whole remainder of the run rather than guess it.
            windows.append((at - CHURN_PRE_S, float("inf")))
        else:
            windows.append(
                (at - CHURN_PRE_S, at + spec.rebalance_window_s + CHURN_POST_S)
            )
    windows.sort()
    merged: List[Tuple[float, float]] = []
    for lo, hi in windows:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
