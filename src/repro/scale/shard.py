"""Multi-process sharded city: one simulator kernel per level-2 region group.

The single-process harness tops out around 100k UEs on one core.  This
module partitions the city **by level-2 (CTA) parent** across shard
engines — each shard runs its own :class:`~repro.sim.core.Simulator`
with the unchanged cohort / batched-lane drivers over the *full* ghost
topology, but drives traffic only for the UEs homed in its own level-2
parents.  The level-2 parent is the natural shard unit because the
topology makes it a consistency boundary:

* Fast Handover (§4.3) requires a shared level-2 parent, so it never
  crosses shards;
* geo-replication at ``georep_level=2`` keeps every checkpoint/repair
  leg inside one parent, so replica traffic never crosses shards;
* only the **full handover** moves a UE between parents — that one
  procedure is the entire cross-shard protocol surface.

A full cross-parent handover executes *entirely inside the source
shard* against its ghost copy of the destination region (every node
exists in every shard; UE state lives only in the owning shard's
deployment).  On completion the UE is torn down locally and a small
migration record — ``(gid, version, runs, clock, serving bs, t)`` — is
carried over the inter-process channel and installed in the destination
shard at ``t + Δ`` via :meth:`~repro.core.deployment.Deployment.install_migrated`,
preserving the RYW reader floor across the process boundary.

**Observability channel.** When tracing is installed, a trace-link id
rides *alongside* the migration record as an extra trailing element —
the obs channel.  Sim-side consumers index only the first seven
fields, the EventTrace records never include the link, and the link
allocator draws no randomness, so the merged digest is bit-identical
with or without tracing (the sharded obs witness pins this).  At merge
time each shard exports its bounded-retention span table plus the
flow tables keyed by link id, and the coordinator stitches one
Chrome/Perfetto trace with one process per shard and flow events
joining each emigrating procedure to its ``shard.install_migrated``
continuation.  Shards also piggyback compact health rows on the
lockstep epoch replies (zero extra round trips), which the coordinator
folds into the ``--obs-stream`` NDJSON heartbeat feed.

**Conservative lookahead.** Δ is the minimum cross-shard notification
delay (one far inter-CPF hop, :func:`shard_lookahead`); link jitter
only ever *adds* latency, so Δ is a true lower bound.  All shards
advance in lockstep epochs of width Δ; a record completed during epoch
``k`` (``t ∈ ((k-1)Δ, kΔ]``) arrives at ``t + Δ > kΔ`` — never in the
destination's past — so each shard can safely simulate a whole epoch
without hearing from the others.  The run continues past the traffic
horizon until every shard's queues drain and no record is in flight.

**Determinism contract.** For a *fixed shard count*, the merged run is
bit-deterministic: each shard is a pure function of (spec, shard index)
— per-shard RNG registries are forked as ``shard:<k>`` — record routing
and install order are fixed by (shard order, emission order), and the
merged EventTrace orders records by ``(time, shard, seq)``
(:func:`~repro.faults.trace.merge_traces`).  The serial inline backend
and the multi-process backend run the identical engine call sequence,
so they produce identical digests — which is how CI pins the witness on
single-core runners.  A sharded trajectory is *not* identical to the
unsharded one (ghost regions do not see other shards' load);
``--shards 1`` bypasses all of this and is bit-identical to today.

Fault plans are partitioned so region-attributable ops (``*_cpf`` /
``*_cta``) are *owned* (counted + traced) by the shard owning the
target's parent and silently mirrored everywhere else — node state
flips identically in every ghost topology.  Ring churn works the same
way: every shard applies the ring change (placement rebalance is
per-shard work); only the owner runs evacuation and counts the event.
"""

from __future__ import annotations

import time
from array import array
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from ..faults.injector import region_of
from ..faults.trace import merge_traces
from ..sim.monitor import QuantileSketch
from ..sim.rng import RngRegistry
from ..experiments.parallel import (
    WorkerSpawnError,
    default_jobs,
    spawn_workers,
)
from ..faults.runner import config_from_name
from .cohort import BatchedDriver, CohortDriver
from .engine import (
    ScaleResult,
    _Engine,
    _mobility_for,
    peak_rss_kb,
)
from .scenarios import ScenarioSpec, get_scenario
from .topology import build_city, region_for_tile, tile_adjacency

__all__ = [
    "ShardMap",
    "ShardEngine",
    "city_parents",
    "partition_population",
    "run_sharded",
    "shard_lookahead",
]

#: raw-sample spill per (region, procedure) sketch in sharded runs:
#: lightly-loaded cells merge exactly; busy cells use the P² combine.
_SHARD_SKETCH_SPILL = 64

#: safety valve: epochs allowed past the traffic horizon before the
#: coordinator declares the run wedged (busy-polls and in-flight
#: procedures drain within a handful of epochs in practice).
_DRAIN_EPOCHS_MAX = 100_000

#: per-shard auditor violation samples carried into the merged result.
_VIOLATION_SAMPLES = 5

#: wire size of one migration record on the inter-shard channel
#: (gid + version + runs + clock + completion time + serving BS name).
#: The trace-link id is *not* counted: it rides the obs channel, which
#: a real deployment would ship out of band of the control plane.
_MIGRATION_WIRE_BYTES = 64

#: default bounded span retention (slowest-K roots per procedure) for
#: traced sharded runs when the caller doesn't pick a --span-keep.
_DEFAULT_SPAN_KEEP = 32


# ------------------------------------------------------------------ partition


class ShardMap:
    """Deterministic ownership: contiguous level-2 parent chunks.

    ``parents`` (sorted) is split into ``shards`` contiguous chunks —
    front-loaded remainder — so geohash band contiguity keeps adjacent
    parents (where cross-parent handovers concentrate) co-sharded when
    possible.  Parents churned in *after* the split (the spare tile
    under a fresh parent) are assigned by bisecting into the initial
    chunk starts: a pure function of the name, identical on every shard.
    """

    def __init__(self, parents: List[str], shards: int):
        parents = sorted(set(parents))
        if shards < 1:
            raise ValueError("shards must be >= 1, got %d" % shards)
        if shards > len(parents):
            raise ValueError(
                "shards=%d exceeds the city's %d level-2 regions — the "
                "level-2 parent is the shard unit (grow l2_regions or "
                "lower --shards)" % (shards, len(parents))
            )
        self.parents = parents
        self.shards = shards
        base, extra = divmod(len(parents), shards)
        self._chunks: List[List[str]] = []
        self._owner: Dict[str, int] = {}
        start = 0
        for k in range(shards):
            size = base + (1 if k < extra else 0)
            chunk = parents[start:start + size]
            self._chunks.append(chunk)
            for parent in chunk:
                self._owner[parent] = k
            start += size
        self._starts = [chunk[0] for chunk in self._chunks]

    def owner_of_parent(self, parent: str) -> int:
        owner = self._owner.get(parent)
        if owner is None:
            owner = max(0, bisect_right(self._starts, parent) - 1)
            self._owner[parent] = owner
        return owner

    def owner_of_tile(self, tile: str) -> int:
        return self.owner_of_parent(tile[:-1])

    def owned_parents(self, shard: int) -> List[str]:
        return list(self._chunks[shard])


def city_parents(spec: ScenarioSpec) -> List[str]:
    """Sorted level-2 parents of the spec's city (the shardable units)."""
    topo = build_city(
        l2_regions=spec.l2_regions,
        l1_per_l2=spec.l1_per_l2,
        cpfs_per_region=spec.cpfs_per_region,
        bss_per_region=spec.bss_per_region,
        precision=spec.precision,
    )
    return sorted({t[:-1] for t in topo.tiles})


def shard_lookahead(spec: ScenarioSpec) -> float:
    """Conservative lookahead Δ: the minimum cross-shard link delay.

    Cross-shard context transfer rides the far inter-CPF class (the
    level-3 ring); jitter only adds on top of the base latency, so the
    base is a true minimum.  Degenerate configs (zero latency) fall
    back to epoch-synchronised windows of duration/64.
    """
    base = float(config_from_name(spec.config).latency.cpf_cpf_far)
    if base <= 0.0:
        return spec.duration_s / 64.0
    return base


def partition_population(
    spec: ScenarioSpec, shard_map: ShardMap
) -> Tuple[List[str], List[Tuple[array, array]]]:
    """Home every UE, replaying the global placement draw sequence once.

    Runs the generic ``scale.place`` loop (initial tile + BS pick per
    UE) exactly as the single-process engine would, then routes each
    ``(gid, bs)`` to the owner of its tile's parent.  Returns the BS
    name table plus per-shard ``(gid array, bs-name-index array)`` —
    compact enough to ship 1M homes over a pipe.
    """
    topo = build_city(
        l2_regions=spec.l2_regions,
        l1_per_l2=spec.l1_per_l2,
        cpfs_per_region=spec.cpfs_per_region,
        bss_per_region=spec.bss_per_region,
        precision=spec.precision,
    )
    mobility = _mobility_for(spec, topo)
    rng = RngRegistry(spec.seed).stream("scale.place")
    bss = spec.bss_per_region
    initial_tile = mobility.initial_tile
    randrange = rng.randrange
    bs_names: List[str] = []
    name_idx: Dict[Tuple[str, int], int] = {}
    owner_cache: Dict[str, int] = {}
    gids = [array("l") for _ in range(shard_map.shards)]
    bsidx = [array("l") for _ in range(shard_map.shards)]
    for gid in range(spec.n_ue):
        tile = initial_tile(rng)
        b = randrange(bss)
        key = (tile, b)
        idx = name_idx.get(key)
        if idx is None:
            idx = name_idx[key] = len(bs_names)
            bs_names.append("bs-%s-%d" % key)
        owner = owner_cache.get(tile)
        if owner is None:
            owner = owner_cache[tile] = shard_map.owner_of_tile(tile)
        gids[owner].append(gid)
        bsidx[owner].append(idx)
    return bs_names, list(zip(gids, bsidx))


# ------------------------------------------------------------------ drivers


class _ShardSlots:
    """Mixin making a cohort driver grow-able and globally addressed.

    Shard drivers start empty and add one slot per locally-homed UE (or
    immigrant), so per-shard memory is O(local population), not O(n_ue)
    × shards.  ``ids[i]`` is the UE's *global* id — ``ue_id(i)`` embeds
    it, so a UE keeps one identity (auditor history, placements, trace)
    across every shard it visits.  ``gone[i]`` marks a slot whose UE
    emigrated: state was torn down here and arrivals must skip it.
    """

    def init_shard(self, engine) -> None:
        self.engine = engine
        self.ids = array("l")
        self.slot_of: Dict[int, int] = {}
        self.gone = bytearray()

    def ue_id(self, i: int) -> str:
        return "%s-%07d" % (self.prefix, self.ids[i])

    def add_slot(self, gid: int) -> int:
        i = self.slot_of.get(gid)
        if i is not None:
            return i
        i = self.n
        self.n += 1
        self.ids.append(gid)
        self.slot_of[gid] = i
        self.attached.append(0)
        self.busy.append(0)
        self.version.append(0)
        self.bs_idx.append(0)
        self.runs.append(0)
        self.gone.append(0)
        return i

    def run_procedure(self, i, proc, target_bs=None):
        yield from super().run_procedure(i, proc, target_bs)
        # a completed full handover may have crossed the shard boundary
        self.engine._after_procedure(i)


class ShardCohortDriver(_ShardSlots, CohortDriver):
    def __init__(self, dep, bs_names: List[str], engine):
        CohortDriver.__init__(self, dep, bs_names, 0)
        self.init_shard(engine)


class ShardBatchedDriver(_ShardSlots, BatchedDriver):
    def __init__(self, dep, bs_names: List[str], engine):
        BatchedDriver.__init__(self, dep, bs_names, 0)
        self.init_shard(engine)

    def add_slot(self, gid: int) -> int:
        new = gid not in self.slot_of
        i = super().add_slot(gid)
        if new:
            self._booted.append(0)
        return i

    def bootstrap(self, i: int, bs_name: str) -> None:
        if self._lazy:
            # per-slot version of BatchedDriver.setup_lane's wholesale
            # prefill: the slot array grows one UE at a time here
            self.version[i] = 1
            self.attached[i] = 1
            self.bs_idx[i] = self.bs_index(bs_name)
            self.dep.auditor.writes += 1
        else:
            CohortDriver.bootstrap(self, i, bs_name)
            self._booted[i] = 1

    def placement_sink(self):
        # the shard engine installs its precomputed population itself
        return None


# ------------------------------------------------------------------ engine


class ShardEngine(_Engine):
    """One shard's engine: full ghost topology, local traffic only."""

    #: sharded runs tick at the coordinator (actions arrive in step
    #: messages); the engine-side loop must stay dormant.
    _local_controller = False

    def __init__(
        self,
        spec: ScenarioSpec,
        mode: str,
        shard_idx: int,
        shards: int,
        population: Tuple[array, array],
        bs_name_list: List[str],
        delta: float,
        obs=None,
        verbose_trace: bool = False,
    ):
        if mode not in ("cohort", "batched"):
            raise ValueError(
                "sharded runs support modes 'cohort' and 'batched', got %r"
                % (mode,)
            )
        self.shard_idx = shard_idx
        self.n_shards = shards
        self._pop_gids, self._pop_bsidx = population
        self._pop_bs_names = bs_name_list
        self.delta = delta
        self._obs = obs
        super().__init__(spec, mode=mode, obs=obs, verbose_trace=verbose_trace)
        self.shard_map = ShardMap(
            sorted({t[:-1] for t in self.topo.tiles}), shards
        )
        # Per-shard traffic streams: an independent fork per shard index.
        # The deployment already took its rng fork from the *global*
        # registry above, so ghost topologies stay identical everywhere.
        self.rngs = RngRegistry(spec.seed).fork("shard:%d" % shard_idx)
        self._sketch_spill = _SHARD_SKETCH_SPILL
        self._buckets: Dict[Tuple[int, Optional[int]], List[int]] = {}
        self._outbox: List[tuple] = []
        self._owner_cache: Dict[str, int] = {}
        #: deterministic trace-link allocator for migration flow events.
        self._next_link = 0
        # Partition the fault plan *after* driver construction: lane
        # eligibility and hazard windows must see the full event list.
        plan = self.injector.plan
        owned: List = []
        mirrored: List = []
        for event in plan.events:
            if event.op.endswith("_cpf") or event.op.endswith("_cta"):
                target_region = region_of(event.target) or ""
                owner = self.shard_map.owner_of_tile(target_region)
            else:
                owner = 0  # link-level ops: shard 0 owns the trace record
            (owned if owner == shard_idx else mirrored).append(event)
        plan.events = owned
        self._mirror_events = mirrored

    # -- wiring ------------------------------------------------------------

    def _make_driver(self, mode: str, bs_names: List[str]):
        if mode == "cohort":
            return ShardCohortDriver(self.dep, bs_names, self)
        driver = ShardBatchedDriver(self.dep, bs_names, self)
        driver.setup_lane(self)
        return driver

    def prepare(self) -> None:
        super().prepare()
        for event in self._mirror_events:
            self.sim.schedule(
                max(0.0, event.at - self.sim.now), self._mirror_fire, event
            )
        self._wrap_hop()

    def _mirror_fire(self, event) -> None:
        """Apply a foreign-owned fault op silently (no counters/trace).

        Node state must flip identically in every ghost topology; the
        owning shard alone records and counts the op, so merged
        fault_counters and the merged trace see it exactly once.
        """
        handler = getattr(self.injector, "_op_" + event.op, None)
        if handler is not None:
            handler(event)

    def _wrap_hop(self) -> None:
        """Count hops whose endpoints' parents live in different shards.

        The ghost execution carries what a distributed deployment would
        ship over the inter-shard channel (cross-parent handover and
        repair legs); the wrapper makes that channel load observable.
        """
        inner = self.dep.hop
        owner_of = self._owner_of_parent
        counters = self.counters

        def hop(hop_class, nbytes, src=None, dst=None, parent=None):
            if src is not None and dst is not None:
                rs, rd = region_of(src), region_of(dst)
                if (
                    rs is not None
                    and rd is not None
                    and rs[:-1] != rd[:-1]
                    and owner_of(rs[:-1]) != owner_of(rd[:-1])
                ):
                    counters["channel_messages"] = (
                        counters.get("channel_messages", 0) + 1
                    )
                    counters["channel_bytes"] = (
                        counters.get("channel_bytes", 0) + nbytes
                    )
            return inner(hop_class, nbytes, src, dst, parent)

        self.dep.hop = hop

    def _owner_of_parent(self, parent: str) -> int:
        owner = self._owner_cache.get(parent)
        if owner is None:
            owner = self._owner_cache[parent] = self.shard_map.owner_of_parent(
                parent
            )
        return owner

    def _owns_tile(self, tile: str) -> bool:
        return self._owner_of_parent(tile[:-1]) == self.shard_idx

    def _owns_region(self, tile: str) -> bool:
        # orchestration-action ownership == tile ownership: counters and
        # trace records for an applied action come from one shard only
        return self._owns_tile(tile)

    # -- population --------------------------------------------------------

    def _bootstrap_population(self) -> None:
        driver = self.driver
        names = self._pop_bs_names
        bsidx = self._pop_bsidx
        gids = self._pop_gids
        if getattr(driver, "_lazy", False) and driver.n == 0:
            # bulk equivalent of add_slot + lazy bootstrap per UE —
            # pure array/dict fills (no RNG, no events, no trace), so
            # the slot state is bit-identical to the loop below at a
            # fraction of the cost; this is the shard-side analogue of
            # BatchedDriver.setup_lane's wholesale prefill
            n = len(gids)
            bsmap = [driver.bs_index(nm) for nm in names]
            driver.ids = array("l", gids)
            driver.slot_of = {g: k for k, g in enumerate(gids)}
            driver.attached = bytearray(b"\x01") * n
            driver.busy = bytearray(n)
            driver.version = array("q", [1]) * n
            if bsmap == list(range(len(names))):
                driver.bs_idx = array("l", bsidx)
            else:
                driver.bs_idx = array("l", map(bsmap.__getitem__, bsidx))
            driver.runs = array("l", [0]) * n
            driver.gone = bytearray(n)
            driver._booted = bytearray(n)
            driver.n = n
            driver.dep.auditor.writes += n
            return
        add_slot = driver.add_slot
        bootstrap = driver.bootstrap
        for k, gid in enumerate(gids):
            bootstrap(add_slot(gid), names[bsidx[k]])

    def _population_n(self) -> int:
        return self.driver.n

    def _bucket(self, lo: int, hi: Optional[int]) -> List[int]:
        bucket = self._buckets.get((lo, hi))
        if bucket is None:
            ids = self.driver.ids
            if hi is None:
                bucket = list(range(len(ids)))
            else:
                bucket = [i for i, g in enumerate(ids) if lo <= g < hi]
            self._buckets[(lo, hi)] = bucket
        return bucket

    def _class_count(self, lo: int, hi: int) -> int:
        return len(self._bucket(lo, hi))

    def _pick_idle(self, pick_rng, lo: int = 0, hi: Optional[int] = None):
        bucket = self._bucket(lo, hi)
        if not bucket:
            self._count("arrivals_no_local")
            return None
        i = bucket[pick_rng.randrange(len(bucket))]
        driver = self.driver
        if driver.gone[i]:
            self._count("arrivals_skipped_remote")
            return None
        if driver.busy[i]:
            self._count("arrivals_skipped_busy")
            return None
        return i

    def _slot_for(self, ue_id: str) -> Optional[int]:
        return self.driver.slot_of.get(int(ue_id.split("-")[-1]))

    def _evacuees(self, tile: str) -> List[int]:
        driver = self.driver
        gone = driver.gone
        return [
            i
            for i in range(driver.n)
            if driver.attached[i]
            and not gone[i]
            and driver.bs_of(i).split("-")[1] == tile
        ]

    # -- churn mirroring ---------------------------------------------------

    def _churn_add(self, tile: str):
        if self._owns_tile(tile):
            yield from super()._churn_add(tile)
            return
        if tile in self.dep.region_map.regions:
            return
        # mirror: same ring change, no ownership counters/evacuation —
        # but re-placement of *local* UEs is this shard's own work
        self.dep.add_region(
            region_for_tile(
                tile, self.spec.cpfs_per_region, self.spec.bss_per_region
            )
        )
        self._refresh_mobility()
        yield from self._rebalance()

    def _churn_remove(self, tile: str):
        if self._owns_tile(tile):
            yield from super()._churn_remove(tile)
            return
        if tile not in self.dep.region_map.regions:
            return
        remaining = [t for t in self.dep.region_map.regions if t != tile]
        self.mobility.set_adjacency(tile_adjacency(remaining))
        # no local UEs live under a foreign parent (in-flight immigrants
        # land under owned parents), so there is nothing to evacuate;
        # drop any placement defensively and retire the ghost region
        for ue_id, placement in list(self.dep.placements_items()):
            if placement.region == tile:
                self.dep.drop_placement(ue_id)
        self.dep.retire_region(tile)
        yield from self._rebalance()

    # -- migration protocol ------------------------------------------------

    def _after_procedure(self, i: int) -> None:
        """Emigrate UE ``i`` if its procedure left it under a foreign parent."""
        driver = self.driver
        if driver.gone[i] or not driver.attached[i]:
            return
        bs_name = driver.bs_of(i)
        parent = bs_name.split("-")[1][:-1]
        if self._owner_of_parent(parent) == self.shard_idx:
            return
        gid = driver.ids[i]
        ue_id = driver.ue_id(i)
        now = self.sim.now
        rec = (
            self._owner_of_parent(parent),
            gid,
            driver.version[i],
            driver.runs[i],
            self.dep.clock_of(ue_id),
            bs_name,
            now,
        )
        obs = self._obs
        if obs is not None and obs.mode == "trace":
            # obs channel: a trace-link id rides past the sim record's
            # seven fields.  Sim consumers index [:7] only; the trace
            # records below never mention it — digest-transparent.
            link = "m%d:%d" % (self.shard_idx, self._next_link)
            self._next_link += 1
            last = obs.last_root
            span_id = (
                last[0] if last is not None and last[1] == ue_id else None
            )
            obs.note_migration_out(link, span_id, now, ue_id, rec[0])
            rec = rec + (link,)
        self._outbox.append(rec)
        driver.gone[i] = 1
        driver.attached[i] = 0
        self.dep.drop_placement(ue_id)
        self._count("migrations_out")
        self._count("channel_messages")
        self._count("channel_bytes", _MIGRATION_WIRE_BYTES)
        self.trace.record(
            now,
            "shard_migrate_out",
            ue=ue_id,
            to=self._owner_of_parent(parent),
            bs=bs_name,
            version=driver.version[i],
        )

    def deliver(self, records: List[tuple]) -> None:
        """Schedule immigrant installs at their conservative arrival times."""
        for rec in records:
            self.sim.schedule_at(rec[6] + self.delta, self._install, rec)

    def _install(self, rec: tuple) -> None:
        # indexed access: the record may carry a trailing obs-channel
        # trace-link id past the seven sim fields
        _dst, gid, version, runs, clock, bs_name, _t = rec[:7]
        link = rec[7] if len(rec) > 7 else None
        driver = self.driver
        new = gid not in driver.slot_of
        i = driver.add_slot(gid)
        driver.gone[i] = 0
        driver.busy[i] = 0
        driver.runs[i] = runs
        driver.version[i] = version
        driver.bs_idx[i] = driver.bs_index(bs_name)
        booted = getattr(driver, "_booted", None)
        if booted is not None:
            booted[i] = 1  # state arrives installed; never lazy-boot it
        ue_id = driver.ue_id(i)
        self._count("migrations_in")
        try:
            self.dep.install_migrated(ue_id, bs_name, version, clock)
        except LookupError:
            # destination region dark at arrival: the UE re-enters
            # detached, exactly like a procedure abort mid-recovery
            driver.attached[i] = 0
            self._count("migrations_in_detached")
        else:
            driver.attached[i] = 1
        obs = self._obs
        if obs is not None and obs.mode == "trace":
            # zero-duration continuation span: the destination-side
            # anchor the stitched flow event lands on.  begin/finish
            # touch only tracer state — schedule-transparent.
            span = obs.tracer.begin(
                "shard.install_migrated",
                phase="migrate",
                ue=ue_id,
                bs=bs_name,
                version=version,
            )
            obs.tracer.finish(
                span, status="ok" if driver.attached[i] else "detached"
            )
            obs.note_migration_in(link, span.span_id, self.sim.now, ue_id)
        self.trace.record(
            self.sim.now,
            "shard_migrate_in",
            ue=ue_id,
            bs=bs_name,
            version=version,
        )
        if new:
            for (lo, hi), bucket in self._buckets.items():
                if hi is None or lo <= gid < hi:
                    bucket.append(i)

    # -- epoch stepping ----------------------------------------------------

    def advance(self, until: float) -> None:
        self.sim.run(until=until)

    def pending(self) -> bool:
        return bool(self.sim._heap or self.sim._immediate)

    def next_event_s(self) -> float:
        """Earliest instant this shard could execute (hence emit) anything.

        ``run(until)`` drains the immediate queue before returning, so
        after an epoch step the answer is simply the heap head (or +inf
        when drained).  The coordinator uses the minimum across shards
        to fast-forward over event-free epochs — see ``_epoch_loop``.
        """
        if self.sim._immediate:
            return self.sim.now
        heap = self.sim._heap
        return heap[0][0] if heap else float("inf")

    def take_outbox(self) -> List[tuple]:
        out = self._outbox
        self._outbox = []
        return out

    def owned_region_count(self) -> int:
        return sum(
            1 for t in self.dep.region_map.regions if self._owns_tile(t)
        )

    # health_row lives on _Engine now (the single-process orchestrator
    # reads the identical row); this class only overrides ownership.

    def finish_payload(self) -> Dict[str, Any]:
        """Everything the coordinator needs to merge this shard's run."""
        result = self.finish(self.sim.now)
        auditor = self.dep.auditor
        samples = [
            {
                "time": v.time,
                "ue": v.ue_id,
                "cpf": v.cpf_name,
                "reader_version": v.reader_version,
                "served_version": v.served_version,
                "span": v.span_id,
            }
            for v in auditor.violations[:_VIOLATION_SAMPLES]
        ]
        return {
            "result": result,
            "records": list(self.trace.records),
            "sketches": dict(self.sketches),
            "owned_regions": self.owned_region_count(),
            "parents": self.shard_map.owned_parents(self.shard_idx),
            "violations_sample": samples,
            "n_local": len(self._pop_gids),
            "end": self.sim.now,
            "health": self.health_row(),
            "obs": (
                self._obs.snapshot(include_spans=True)
                if self._obs is not None
                else None
            ),
        }


# ------------------------------------------------------------------ backends


def _host_step(
    engine: ShardEngine,
    until: float,
    inbox: List[tuple],
    want_health: bool = False,
    actions: Optional[List[dict]] = None,
):
    # orchestration actions apply at the epoch boundary, before this
    # epoch's deliveries and advance — every shard sees the identical
    # action list at the identical sim state, so ring/node mutations
    # mirror deterministically
    if actions:
        engine.apply_actions(actions)
    engine.deliver(inbox)
    engine.advance(until)
    health = engine.health_row() if want_health else None
    return engine.take_outbox(), engine.pending(), engine.next_event_s(), health


class _InlineHost:
    """Serial in-process shard: the worker protocol without the worker.

    Runs the identical engine call sequence as a process worker, so an
    inline run's merged digest is bit-identical to a multi-process one —
    the determinism witness holds on single-core machines.
    """

    def __init__(self, make_engine):
        self._make_engine = make_engine
        self.engine: Optional[ShardEngine] = None
        self.wall = 0.0
        self.cpu = 0.0
        self._last = None

    def start(self) -> None:
        t0, c0 = time.perf_counter(), time.process_time()
        self.engine = self._make_engine()
        self.engine.prepare()
        self.wall += time.perf_counter() - t0
        self.cpu += time.process_time() - c0

    def step_send(
        self,
        until: float,
        inbox: List[tuple],
        want_health: bool = False,
        actions: Optional[List[dict]] = None,
    ) -> None:
        t0, c0 = time.perf_counter(), time.process_time()
        out, busy, nxt, health = _host_step(
            self.engine, until, inbox, want_health, actions
        )
        self.wall += time.perf_counter() - t0
        self.cpu += time.process_time() - c0
        if health is not None:
            health["wall_s"] = self.wall
        self._last = (out, busy, nxt, health)

    def step_recv(self):
        return self._last

    def finish(self) -> Dict[str, Any]:
        t0, c0 = time.perf_counter(), time.process_time()
        payload = self.engine.finish_payload()
        self.wall += time.perf_counter() - t0
        self.cpu += time.process_time() - c0
        payload["wall_s"] = self.wall
        payload["cpu_s"] = self.cpu
        # inline shards share the coordinator process; per-shard RSS is
        # not separable, so report the engine's own process peak
        payload["rss_kb"] = peak_rss_kb()
        return payload

    def close(self) -> None:
        pass


class _ProcessHost:
    """Coordinator-side proxy for one long-lived shard worker process."""

    def __init__(self, handle):
        self.handle = handle

    def start(self) -> None:
        pass  # prepared during spawn handshake

    def step_send(
        self,
        until: float,
        inbox: List[tuple],
        want_health: bool = False,
        actions: Optional[List[dict]] = None,
    ) -> None:
        self.handle.send(("step", until, inbox, want_health, actions))

    def step_recv(self):
        msg = self._recv()
        return msg[1], msg[2], msg[3], (msg[4] if len(msg) > 4 else None)

    def finish(self) -> Dict[str, Any]:
        self.handle.send(("finish",))
        return self._recv()[1]

    def _recv(self):
        try:
            msg = self.handle.recv()
        except EOFError:
            raise RuntimeError("shard worker died mid-run")
        if msg[0] == "error":
            raise RuntimeError("shard worker failed: %s" % (msg[1],))
        return msg

    def close(self) -> None:
        self.handle.close()


def _shard_worker(
    conn,
    spec,
    mode,
    shard_idx,
    shards,
    verbose_trace,
    obs_mode,
    span_keep,
    bs_names,
    gids,
    bsidx,
    delta,
):
    """Long-lived worker: build one shard engine, serve epoch messages."""
    try:
        obs = None
        if obs_mode:
            from ..obs import Observability

            obs = Observability(obs_mode, span_keep=span_keep)
        engine = ShardEngine(
            spec,
            mode=mode,
            shard_idx=shard_idx,
            shards=shards,
            population=(gids, bsidx),
            bs_name_list=bs_names,
            delta=delta,
            obs=obs,
            verbose_trace=verbose_trace,
        )
        wall, cpu = time.perf_counter(), time.process_time()
        engine.prepare()
        wall = time.perf_counter() - wall
        cpu = time.process_time() - cpu
        conn.send(("ready",))
        while True:
            msg = conn.recv()
            if msg[0] == "step":
                want = msg[3] if len(msg) > 3 else False
                acts = msg[4] if len(msg) > 4 else None
                t0, c0 = time.perf_counter(), time.process_time()
                out, busy, nxt, health = _host_step(
                    engine, msg[1], msg[2], want, acts
                )
                wall += time.perf_counter() - t0
                cpu += time.process_time() - c0
                if health is not None:
                    health["wall_s"] = wall
                conn.send(("stepped", out, busy, nxt, health))
            elif msg[0] == "finish":
                t0, c0 = time.perf_counter(), time.process_time()
                payload = engine.finish_payload()
                wall += time.perf_counter() - t0
                cpu += time.process_time() - c0
                payload["wall_s"] = wall
                payload["cpu_s"] = cpu
                payload["rss_kb"] = peak_rss_kb()
                conn.send(("done", payload))
                conn.close()
                return
            else:
                raise ValueError("unknown shard message %r" % (msg[0],))
    except BaseException as err:  # pragma: no cover - ferried to coordinator
        try:
            conn.send(("error", "%s: %s" % (type(err).__name__, err)))
        except Exception:
            pass


# ------------------------------------------------------------------ merge


def _merge_sketch_tables(payloads) -> Dict[str, Dict[str, Dict[str, Optional[float]]]]:
    keys = sorted({key for p in payloads for key in p["sketches"]})
    region_pct_ms: Dict[str, Dict[str, Dict[str, Optional[float]]]] = {}
    for key in keys:
        merged = QuantileSketch.merge(
            [p["sketches"].get(key) for p in payloads], name="%s/%s" % key
        )
        summary = merged.summary()
        out: Dict[str, Optional[float]] = {"count": summary.get("count", 0.0)}
        for k, v in summary.items():
            if k != "count":
                out[k] = None if v is None else v * 1e3
        region, proc = key
        region_pct_ms.setdefault(region, {})[proc] = out
    return region_pct_ms


def _merge_payloads(
    spec: ScenarioSpec,
    mode: str,
    shards: int,
    payloads: List[Dict[str, Any]],
    delta: float,
    epochs: int,
    backend: str,
    wall0: float,
) -> ScaleResult:
    results: List[ScaleResult] = [p["result"] for p in payloads]
    counters: Dict[str, int] = {}
    fault_counters: Dict[str, int] = {}
    lane: Dict[str, int] = {}
    for r in results:
        for k, v in r.counters.items():
            counters[k] = counters.get(k, 0) + v
        for k, v in r.fault_counters.items():
            fault_counters[k] = fault_counters.get(k, 0) + v
        for k, v in r.lane.items():
            if k in ("enabled", "lazy_bootstrap"):
                lane[k] = max(lane.get(k, 0), v)
            else:
                lane[k] = lane.get(k, 0) + v
    merged_trace = merge_traces([p["records"] for p in payloads])
    shard_rows = [
        {
            "shard": k,
            "parents": list(p["parents"]),
            "n_local": p["n_local"],
            "migrations_out": r.counters.get("migrations_out", 0),
            "migrations_in": r.counters.get("migrations_in", 0),
            "wall_s": p["wall_s"],
            "cpu_s": p["cpu_s"],
            "rss_kb": p["rss_kb"],
            "violations": r.violations,
            "violations_sample": p["violations_sample"],
            "health": p.get("health"),
        }
        for k, (p, r) in enumerate(zip(payloads, results))
    ]
    perf: Dict[str, Any] = {
        "wall_s": time.perf_counter() - wall0,
        "peak_rss_kb": peak_rss_kb(),
        "total_rss_kb": sum(p["rss_kb"] for p in payloads),
        # on a single-CPU host the workers time-slice, so a worker's
        # *elapsed* wall includes time spent descheduled while its
        # siblings ran; max_shard_cpu_s is the honest critical path —
        # what the slowest shard would take given a core of its own
        "max_shard_wall_s": max(p["wall_s"] for p in payloads),
        "max_shard_cpu_s": max(p["cpu_s"] for p in payloads),
        "lookahead_s": delta,
        "epochs": epochs,
        "backend": backend,
    }
    return ScaleResult(
        scenario=spec.name,
        mode=mode,
        n_ue=spec.n_ue,
        duration_s=spec.duration_s,
        seed=spec.seed,
        end_time_s=max(p["end"] for p in payloads),
        regions_final=sum(p["owned_regions"] for p in payloads),
        serves=sum(r.serves for r in results),
        writes=sum(r.writes for r in results),
        violations=sum(r.violations for r in results),
        completed=sum(r.completed for r in results),
        aborted=sum(r.aborted for r in results),
        recovered=sum(r.recovered for r in results),
        reattached=sum(r.reattached for r in results),
        counters=counters,
        fault_counters=fault_counters,
        region_pct_ms=_merge_sketch_tables(payloads),
        digest=merged_trace.digest(),
        trace_events=len(merged_trace),
        lane=lane,
        n_shards=shards,
        perf=perf,
        shards=shard_rows,
    )


# ------------------------------------------------------------------ coordinator


def _epoch_loop(hosts, duration: float, delta: float, stream=None, orch=None) -> int:
    """Advance all shards in lockstep Δ epochs until fully drained.

    Event-free epochs are fast-forwarded: when the earliest thing any
    shard could execute — minimum heap head across shards, or the
    arrival instant of a record in flight — is ``nxt``, no shard can
    *emit* before ``nxt``, so no record can *arrive* before
    ``nxt + Δ``, and every epoch boundary strictly below ``nxt + Δ``
    is both event-free and message-free.  Skipping them executes the
    identical event sequence as strict lockstep (the boundary stays on
    the same repeated-addition Δ grid, and strictly below the earliest
    arrival so ``run(until)``'s inclusive boundary can never pull a
    same-instant event ahead of an install).  This matters because
    drain tails run tens of simulated seconds past the traffic horizon
    at Δ ≈ 1.5 ms — tens of thousands of empty round trips without it.

    ``stream`` (a :class:`~repro.obs.stream.HeartbeatStream`) turns on
    epoch-aligned live telemetry: at deterministic progress marks the
    step message asks every shard for a compact health row — riding the
    existing epoch round trip, zero extra messages — and the folded row
    goes out as one NDJSON heartbeat.  Cadence is a pure function of
    the run (progress-fraction buckets while traffic flows, every
    ``stream.drain_every`` epochs while draining), never wall clocks.

    ``orch`` (a :class:`~repro.orch.Orchestrator`) hosts the closed-loop
    controller at the coordinator: at the first epoch boundary at or
    past each ``tick_s`` multiple the step asks for health (the same
    piggyback as heartbeats), the controller decides on the folded rows,
    and the resulting actions ship *inside the next epoch's step
    message* so every shard applies them at the identical boundary.
    Fast-forward is clamped to the tick horizon — and suspended entirely
    while actions are pending — so the controller's observation times
    stay a pure function of (policy, run), never of heap contents.
    """
    for host in hosts:
        host.start()
    inboxes: List[List[tuple]] = [[] for _ in hosts]
    t = 0.0
    epochs = 0
    last_mark = 0
    last_beat = 0
    tick_s = orch.policy.tick_s if orch is not None else float("inf")
    next_tick = tick_s
    pending_actions: List[dict] = []
    max_epochs = int(duration / delta) + _DRAIN_EPOCHS_MAX
    while True:
        epochs += 1
        if epochs > max_epochs:
            raise RuntimeError(
                "sharded run failed to drain after %d epochs" % epochs
            )
        t += delta
        tick = orch is not None and next_tick <= duration and t >= next_tick
        if tick:
            while next_tick <= t:
                next_tick += tick_s
        want = False
        if stream is not None:
            if t < duration:
                mark = int((t / duration) * stream.marks)
                want = mark > last_mark
                if want:
                    last_mark = mark
            else:
                # draining: one beat at the horizon crossing, then a
                # low-rate pulse so multi-second tails stay visible
                want = (
                    last_mark < stream.marks
                    or epochs - last_beat >= stream.drain_every
                )
                if want:
                    last_mark = stream.marks
        # send every step first: process workers advance concurrently
        for host, inbox in zip(hosts, inboxes):
            host.step_send(t, inbox, want or tick, pending_actions)
        pending_actions = []
        inboxes = [[] for _ in hosts]
        busy = False
        nxt = float("inf")
        healths: List[Dict[str, Any]] = []
        for host in hosts:
            outbox, pending, head, health = host.step_recv()
            busy = busy or pending
            if health is not None:
                healths.append(health)
            if head < nxt:
                nxt = head
            for rec in outbox:
                inboxes[rec[0]].append(rec)
                arrival = rec[6] + delta
                if arrival < nxt:
                    nxt = arrival
        if want and healths:
            last_beat = epochs
            stream.heartbeat(epochs, t, duration, healths)
        if tick:
            pending_actions = orch.observe(epochs, t, healths)
        if (
            t >= duration
            and not busy
            and not any(inboxes)
            and not pending_actions
        ):
            return epochs
        if pending_actions:
            # actions must land at the very next boundary; skipping
            # epochs here would apply them late (and could let a shard
            # simulate past a window the actions inject events into)
            continue
        # fast-forward: leave t at the last boundary whose *successor*
        # (the next epoch's until, assigned at the top of the loop) is
        # still strictly below the earliest possible arrival — and, with
        # a controller, strictly below the next tick, so the tick fires
        # at the first grid boundary >= its schedule regardless of how
        # empty the heaps are
        horizon = (
            next_tick if (orch is not None and next_tick <= duration) else None
        )
        if nxt == float("inf"):
            while t + delta < duration and (
                horizon is None or t + delta < horizon
            ):
                t += delta
        else:
            limit = nxt + delta
            step = t + delta
            while step + delta < limit and (horizon is None or step < horizon):
                t = step
                step = t + delta


def run_sharded(
    scenario,
    n_ue: Optional[int] = None,
    duration_s: Optional[float] = None,
    seed: Optional[int] = None,
    mode: str = "cohort",
    shards: int = 2,
    backend: str = "auto",
    obs=None,
    stream=None,
    verbose_trace: bool = False,
) -> ScaleResult:
    """Run one scenario partitioned across ``shards`` shard engines.

    ``shards=0`` means one per core (:func:`default_jobs`); ``shards=1``
    is exactly the single-process engine.  ``backend`` selects the
    execution vehicle: ``"process"`` forks one long-lived worker per
    shard, ``"inline"`` runs the same engines round-robin in-process
    (bit-identical results — the CI witness path), and ``"auto"`` picks
    processes when more than one core is available.

    ``obs`` (an :class:`~repro.obs.Observability` *template* — each
    shard builds its own instance from its mode/span_keep) enables
    per-shard tracing or metrics; trace mode runs under bounded span
    retention (``obs.span_keep``, default ``_DEFAULT_SPAN_KEEP``) and
    attaches the per-shard snapshots as ``result.obs_shards`` for
    :func:`~repro.obs.export.stitch_chrome_trace`.  ``stream`` (a
    :class:`~repro.obs.stream.HeartbeatStream`) turns on the
    epoch-aligned NDJSON heartbeat feed.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    spec = spec.with_overrides(n_ue=n_ue, duration_s=duration_s, seed=seed)
    if backend not in ("auto", "inline", "process"):
        raise ValueError("backend must be auto/inline/process, got %r" % backend)
    if shards == 0:
        shards = default_jobs()
    if shards < 0:
        raise ValueError("shards must be >= 0, got %d" % shards)
    if shards == 1:
        result = _Engine(
            spec, mode=mode, obs=obs, verbose_trace=verbose_trace, stream=stream
        ).run()
        if stream is not None:
            stream.summary(result)
        return result
    if mode not in ("cohort", "batched"):
        raise ValueError(
            "sharded runs support modes 'cohort' and 'batched', got %r" % (mode,)
        )
    wall0 = time.perf_counter()
    parents = city_parents(spec)
    shard_map = ShardMap(parents, shards)  # validates shards <= len(parents)
    bs_names, populations = partition_population(spec, shard_map)
    delta = shard_lookahead(spec)
    orch = None
    if getattr(spec, "orch_policy", None):
        from ..orch import Orchestrator, OrchPolicy

        orch = Orchestrator(
            OrchPolicy.from_dict(spec.orch_policy), spec.duration_s
        )
        if stream is not None:
            orch.attach_stream(stream)
    obs_mode = getattr(obs, "mode", None) if obs is not None else None
    span_keep = getattr(obs, "span_keep", None) if obs is not None else None
    if obs_mode == "trace" and span_keep is None:
        # sharded traces default to bounded retention: each shard keeps
        # the slowest-K roots per procedure plus every fault/recovery/
        # migration tree, so the merge payload stays pipe-sized
        span_keep = _DEFAULT_SPAN_KEEP

    hosts = None
    backend_used = "inline"
    if backend == "process" or (backend == "auto" and default_jobs() > 1):
        worker_args = [
            (
                spec,
                mode,
                k,
                shards,
                verbose_trace,
                obs_mode,
                span_keep,
                bs_names,
                populations[k][0],
                populations[k][1],
                delta,
            )
            for k in range(shards)
        ]
        try:
            handles = spawn_workers(_shard_worker, worker_args)
        except WorkerSpawnError:
            if backend == "process":
                raise
            handles = None
        if handles is not None:
            hosts = []
            try:
                for handle in handles:
                    msg = handle.recv()
                    if msg[0] == "error":
                        raise RuntimeError(
                            "shard worker failed during startup: %s" % (msg[1],)
                        )
                    hosts.append(_ProcessHost(handle))
                backend_used = "process"
            except EOFError:
                # the platform forked but killed the children: fall back
                for handle in handles:
                    handle.close(timeout=1.0)
                hosts = None
                if backend == "process":
                    raise WorkerSpawnError("shard workers died during startup")
    if hosts is None:
        # one Observability *per shard*, exactly like the process
        # backend, so lane eligibility (and hence the digest) cannot
        # depend on which backend ran
        def _shard_obs():
            if obs_mode is None:
                return None
            from ..obs import Observability

            return Observability(obs_mode, span_keep=span_keep)

        def _maker(k):
            return lambda: ShardEngine(
                spec,
                mode=mode,
                shard_idx=k,
                shards=shards,
                population=populations[k],
                bs_name_list=bs_names,
                delta=delta,
                obs=_shard_obs(),
                verbose_trace=verbose_trace,
            )

        hosts = [_InlineHost(_maker(k)) for k in range(shards)]

    try:
        epochs = _epoch_loop(
            hosts, spec.duration_s, delta, stream=stream, orch=orch
        )
        payloads = [host.finish() for host in hosts]
    finally:
        for host in hosts:
            host.close()

    result = _merge_payloads(
        spec, mode, shards, payloads, delta, epochs, backend_used, wall0
    )
    snapshots = [p["obs"] for p in payloads if p["obs"] is not None]
    if snapshots:
        from ..obs.metrics import label_snapshot, merge_snapshots

        metrics = [
            label_snapshot(s.get("metrics"), shard=k)
            for k, s in enumerate(snapshots)
        ]
        summary: Dict[str, Any] = {
            "mode": obs_mode,
            "shards": len(snapshots),
            "spans_started": sum(s.get("spans_started", 0) for s in snapshots),
            "spans_finished": sum(
                s.get("spans_finished", 0) for s in snapshots
            ),
            "metrics": merge_snapshots([m for m in metrics if m is not None]),
        }
        retentions = [s.get("retention") for s in snapshots]
        if any(r is not None for r in retentions):
            summary["retention"] = {
                "limit": span_keep,
                "roots_kept": sum(
                    r.get("roots_kept", 0) for r in retentions if r
                ),
                "roots_dropped": sum(
                    r.get("roots_dropped", 0) for r in retentions if r
                ),
            }
        result.obs_snapshot = summary
        #: per-shard wire snapshots (span tables + flow tables), in
        #: shard order — the stitcher's input
        result.obs_shards = snapshots
    if orch is not None:
        result.orch_policy = orch.policy.to_dict()
        result.orch_log = list(orch.log)
        result.orch_summary = orch.summary()
    if stream is not None:
        stream.summary(result)
    return result
