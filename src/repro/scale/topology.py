"""City topologies generated from geo-hash tiles.

A city is a band of level-2 tiles marching east from an origin point,
each contributing up to four level-1 child tiles (one CTA + CPF pool +
BS set per child, Fig. 6).  Tiles are derived from the origin's
geo-hash *by string extension* — never by re-encoding coordinates near
a cell edge, where float rounding can land a boundary point in the
neighbouring cell — so a tile's level-2 membership is exactly its
geo-hash prefix and the ring structure follows from ``geo.regions``
with no hand-wiring.

Adjacency between level-1 tiles (what the mobility models walk) is
computed from the tiles' exact bounding boxes: two equal-precision
tiles are adjacent iff they share an edge.  Bounds are binary fractions
of the lat/lon ranges, so the edge comparison is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..geo import geohash
from ..geo.regions import Region, RegionMap

__all__ = [
    "CHILD_ORDER",
    "CityTopology",
    "build_city",
    "region_for_tile",
    "tile_adjacency",
]

#: order in which a level-2 parent's children join the city: SW, SE,
#: NW, NE.  Taking the southern row first keeps a west-to-east band of
#: parents contiguous even when only 2 of 4 children are used (a city
#: with disconnected islands would quietly turn every mobility model
#: into a no-op).  With one child per parent the band is disconnected
#: by construction; scenarios use >= 2.
CHILD_ORDER = ("0", "2", "1", "3")
_CHILD_ORDER = CHILD_ORDER

#: default city origin (the paper's testbed is a metro deployment; any
#: mid-latitude point far from the antimeridian works — this is Chicago).
DEFAULT_ORIGIN = (41.88, -87.63)


def region_for_tile(tile: str, cpfs_per_region: int, bss_per_region: int) -> Region:
    """The Region (node names included) for one level-1 tile.

    Naming follows the repo convention ``<kind>-<geohash>-<k>`` so that
    ``repro.faults.injector.region_of`` keeps parsing regions out of
    node names unchanged.
    """
    return Region(
        geohash=tile,
        cta="cta-" + tile,
        cpfs=["cpf-%s-%d" % (tile, k) for k in range(cpfs_per_region)],
        bss=["bs-%s-%d" % (tile, k) for k in range(bss_per_region)],
    )


def _share_edge(a: str, b: str) -> bool:
    (alat_lo, alat_hi), (alon_lo, alon_hi) = geohash.decode_bounds(a)
    (blat_lo, blat_hi), (blon_lo, blon_hi) = geohash.decode_bounds(b)
    lat_overlap = max(alat_lo, blat_lo) < min(alat_hi, blat_hi)
    lon_overlap = max(alon_lo, blon_lo) < min(alon_hi, blon_hi)
    touch_lat = alat_lo == blat_hi or alat_hi == blat_lo
    touch_lon = alon_lo == blon_hi or alon_hi == blon_lo
    return (touch_lat and lon_overlap) or (touch_lon and lat_overlap)


def tile_adjacency(tiles: List[str]) -> Dict[str, List[str]]:
    """Level-1 tile graph: equal-precision tiles sharing an edge."""
    out: Dict[str, List[str]] = {t: [] for t in tiles}
    ordered = sorted(tiles)
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            if _share_edge(a, b):
                out[a].append(b)
                out[b].append(a)
    return {t: sorted(ns) for t, ns in out.items()}


@dataclass
class CityTopology:
    """The generated deployment: regions, tile graph, and a spare tile."""

    regions: List[Region]
    cpfs_per_region: int
    bss_per_region: int
    #: level-1 tile -> adjacent level-1 tiles (equal precision, shared edge)
    adjacency: Dict[str, List[str]] = field(default_factory=dict)
    #: an unused level-1 tile adjacent to the city, reserved for the
    #: ring-churn scenario's mid-run CTA add.
    spare_tile: Optional[str] = None

    @property
    def tiles(self) -> List[str]:
        return [r.geohash for r in self.regions]

    def region_map(self, vnodes: int = 64) -> RegionMap:
        return RegionMap(list(self.regions), vnodes=vnodes)

    def spare_region(self) -> Region:
        if self.spare_tile is None:
            raise ValueError("topology has no spare tile")
        return region_for_tile(self.spare_tile, self.cpfs_per_region, self.bss_per_region)

    def adjacency_with(self, extra_tiles: List[str]) -> Dict[str, List[str]]:
        """The tile graph including churned-in tiles (recomputed exact)."""
        return tile_adjacency(sorted(set(self.tiles) | set(extra_tiles)))

    def adjacency_without(self, removed: List[str]) -> Dict[str, List[str]]:
        gone = set(removed)
        return tile_adjacency([t for t in self.tiles if t not in gone])


def build_city(
    l2_regions: int = 4,
    l1_per_l2: int = 4,
    cpfs_per_region: int = 2,
    bss_per_region: int = 2,
    precision: int = 6,
    origin: Tuple[float, float] = DEFAULT_ORIGIN,
) -> CityTopology:
    """A city of ``l2_regions`` level-2 tiles marching east from ``origin``.

    ``precision`` is the level-1 tile depth; level-2 parents are one
    character shorter.  Each parent contributes its first ``l1_per_l2``
    children (alphabet order).  The spare tile for ring churn is the
    first child of the *next* parent east of the city — deliberately a
    lone level-1 region under a fresh level-2 parent, the degenerate
    ring shape the property tests exercise.
    """
    if l2_regions < 1:
        raise ValueError("need at least one level-2 region")
    if not 1 <= l1_per_l2 <= 4:
        raise ValueError("a level-2 tile has 1-4 level-1 children")
    if precision < 3:
        raise ValueError("precision must be >= 3 (level-2 parents need >= 2 chars)")
    lat, lon = origin
    base = geohash.encode(lat, lon, precision - 1)
    (_lat_lo, _lat_hi), (lon_lo, lon_hi) = geohash.decode_bounds(base)
    width = lon_hi - lon_lo
    parents: List[str] = []
    for k in range(l2_regions + 1):  # +1: the spare tile's parent
        step_lon = lon + k * width
        if step_lon > 180.0:
            raise ValueError(
                "city of %d level-2 tiles crosses the antimeridian from %r"
                % (l2_regions, origin)
            )
        parents.append(geohash.encode(lat, step_lon, precision - 1))
    if len(set(parents)) != len(parents):  # pragma: no cover - defensive
        raise ValueError("level-2 tiles collide; widen the origin spacing")
    regions = [
        region_for_tile(parent + c, cpfs_per_region, bss_per_region)
        for parent in parents[:l2_regions]
        for c in _CHILD_ORDER[:l1_per_l2]
    ]
    spare = parents[l2_regions] + _CHILD_ORDER[0]
    topo = CityTopology(
        regions=regions,
        cpfs_per_region=cpfs_per_region,
        bss_per_region=bss_per_region,
        spare_tile=spare,
    )
    topo.adjacency = tile_adjacency(topo.tiles)
    return topo
