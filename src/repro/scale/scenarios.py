"""Scenario catalog for the city-scale harness.

Each scenario is a :class:`ScenarioSpec`: topology shape, population
size, per-UE traffic rates, the mobility model, optional timed fault
events, and optional ring-churn events.  Times inside a spec are
fractions of the run duration, so ``--duration`` scales a scenario
without re-deriving its phase structure.

The catalog mirrors the paper's deployment story: steady metro load
(§6.1's offered-load axis, here spread over a real ring), directional
morning-commute mobility (cross-region handovers, §4.3 / fig. 11), a
stadium flash crowd (the localized overload that motivates per-region
CPF pools), a region failover (§4.2.5 scenario 4 at city scale), and
ring churn (CTA added and removed mid-run with replica re-placement).

The signaling-storm trio (``iot-reattach-storm``, ``paging-storm``,
``midnight-tau-spike``) swaps the Poisson superposition for a measured
traffic model (``ScenarioSpec.traffic_model`` naming an entry in
``repro.traffic.models.MODELS``): per-procedure inter-arrival
distributions, smartphone-vs-IoT device classes, diurnal envelopes,
and correlated-burst storms after Meng et al. — every generator backed
by the statistical calibration suite in
``tests/traffic/test_calibration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

__all__ = ["ScenarioSpec", "SCENARIOS", "get_scenario", "scenario_names"]

#: mean session interarrival from the ng4T traffic mix (traces.py).
_SESSION_RATE = 1.0 / 106.9


@dataclass
class ScenarioSpec:
    """Everything one scale run is a deterministic function of."""

    name: str
    description: str
    # population & time
    n_ue: int = 20000
    duration_s: float = 2.0
    seed: int = 1
    # topology (level-1 tiles = l2_regions * l1_per_l2, one CTA each)
    l2_regions: int = 4
    l1_per_l2: int = 4
    cpfs_per_region: int = 2
    bss_per_region: int = 2
    precision: int = 6
    # per-UE rates (aggregated Poisson across the cohort); ignored when
    # a measured traffic model drives the run instead
    service_rate_per_ue: float = _SESSION_RATE
    mobility_rate_per_ue: float = 1.0 / 120.0
    tau_rate_per_ue: float = 1.0 / 600.0
    #: measured traffic model (``repro.traffic.models`` name); None =
    #: the legacy merged-Poisson superposition driver
    traffic_model: Optional[str] = None
    #: multiplier on every model process/mobility rate — lets small-N
    #: test runs keep realistic per-device means but enough arrivals
    traffic_rate_scale: float = 1.0
    # mobility model: random_walk | commute | flash_crowd
    mobility_model: str = "random_walk"
    #: (start_frac, end_frac) of the commute wave / flash-crowd window
    wave_window: Tuple[float, float] = (0.25, 0.75)
    #: rate multiplier applied to mobility during the wave window
    wave_mobility_boost: float = 4.0
    # timed faults: (time_frac, op, target) with target "region:<tile>"
    # expanding to the tile's CTA + every CPF
    fault_events: List[Tuple[float, str, str]] = field(default_factory=list)
    # seeded message-fault profiles: (hop_class, drop_p) — lost
    # checkpoints/ACKs on that hop for the whole run
    link_faults: List[Tuple[str, float]] = field(default_factory=list)
    # ring churn: (time_frac, "add"|"remove", tile) — "spare" means the
    # topology's reserved spare tile; "fill:<k>" the first unused child
    # of the k-th level-2 parent (a sibling join, so existing regions'
    # level-2 rings actually change and replicas re-place)
    churn_events: List[Tuple[float, str, str]] = field(default_factory=list)
    #: seconds over which post-churn re-placement fetches are staggered
    rebalance_window_s: float = 0.25
    #: keep the auditor's per-UE causal history (None = only when the
    #: population is small enough for the diagnostics to be free)
    audit_history: Optional[bool] = None
    #: closed-loop orchestration policy (``repro.orch.OrchPolicy`` as a
    #: dict, the ``--policy`` JSON DSL); None = no controller
    orch_policy: Optional[Dict] = None
    config: str = "neutrino"

    def with_overrides(
        self,
        n_ue: Optional[int] = None,
        duration_s: Optional[float] = None,
        seed: Optional[int] = None,
        audit_history: Optional[bool] = None,
    ) -> "ScenarioSpec":
        kwargs = {}
        if n_ue is not None:
            kwargs["n_ue"] = n_ue
        if duration_s is not None:
            kwargs["duration_s"] = duration_s
        if seed is not None:
            kwargs["seed"] = seed
        if audit_history is not None:
            kwargs["audit_history"] = audit_history
        return replace(self, **kwargs) if kwargs else self


def _catalog() -> Dict[str, ScenarioSpec]:
    specs = [
        ScenarioSpec(
            name="steady-city",
            description="16 level-1 regions, random-walk roaming, steady "
            "ng4T-rate session load; the baseline city.",
        ),
        ScenarioSpec(
            name="commute-wave",
            description="Morning commute: the population walks from "
            "residential tiles into the downtown level-2 region mid-run, "
            "turning background roaming into a directed cross-region "
            "handover wave.",
            mobility_model="commute",
            mobility_rate_per_ue=1.0 / 60.0,
        ),
        ScenarioSpec(
            name="stadium-flash-crowd",
            description="Flash crowd: everyone converges on one stadium "
            "tile during the event window and disperses after, "
            "concentrating attach/service load on one region's CPF pool.",
            mobility_model="flash_crowd",
            mobility_rate_per_ue=1.0 / 60.0,
            service_rate_per_ue=2.0 * _SESSION_RATE,
        ),
        ScenarioSpec(
            name="region-failover",
            description="A whole level-1 region (CTA + every CPF) crashes "
            "mid-run and recovers later; roaming UEs ride §4.2.5 recovery "
            "while the auditor checks RYW end to end.",
            fault_events=[
                (0.40, "fail", "region:index:0"),
                (0.75, "recover", "region:index:0"),
            ],
        ),
        ScenarioSpec(
            name="iot-reattach-storm",
            description="Region blackout + IoT mass re-registration: a "
            "level-1 region (CTA + every CPF) goes dark mid-run; when it "
            "recovers, the measured IoT classes re-register in an "
            "exponential-drain storm that hammers the CTA log/replay and "
            "attach paths while smartphones keep their diurnal session "
            "load.",
            traffic_model="metro-iot-reattach",
            traffic_rate_scale=4.0,
            fault_events=[
                (0.30, "fail", "region:index:0"),
                (0.50, "recover", "region:index:0"),
            ],
        ),
        ScenarioSpec(
            name="paging-storm",
            description="Paging storm: a broadcast event pages 80% of the "
            "smartphone class inside a short window, each paged UE "
            "answering with a service request on top of the measured "
            "diurnal background.",
            traffic_model="metro-paging",
            traffic_rate_scale=4.0,
        ),
        ScenarioSpec(
            name="midnight-tau-spike",
            description="Midnight TAU synchronization: IoT periodic-TAU "
            "timers aligned to a wall-clock boundary fire in one tight "
            "uniform window — the synchronized-signaling worst case of "
            "Meng et al.",
            traffic_model="metro-midnight-tau",
            traffic_rate_scale=4.0,
        ),
        ScenarioSpec(
            name="upgrade-under-commute-wave",
            description="Rolling CPF upgrade during the morning commute: "
            "the closed-loop controller drains, restarts, and re-rings "
            "every downtown CPF one at a time (state migrated away and "
            "repaired back through the placement path) while the commute "
            "wave pours handovers into exactly that level-2 parent; the "
            "auditor checks RYW across every drain.",
            mobility_model="commute",
            mobility_rate_per_ue=1.0 / 60.0,
            orch_policy={
                "tick_s": 0.05,
                "upgrade_start_frac": 0.20,
                "upgrade_drain_s": 0.10,
                "upgrade_stagger_s": 0.15,
                # the commute model's downtown level-2 parent at the
                # default topology (see tests/orch test pinning this)
                "upgrade_prefix": "12111",
            },
        ),
        ScenarioSpec(
            name="autoscale-under-flash-crowd",
            description="Hysteresis autoscale under a flash crowd: a "
            "two-region city provisioned with one CPF each, hit by the "
            "measured IoT re-attach storm (a front-loaded exponential "
            "drain that swamps a single processing core); the controller "
            "watches per-CPF outstanding load in the heartbeat feed, "
            "rings extra CPFs into hot regions while the storm drains, "
            "and rings them back out in the quiet tail — beating the "
            "fixed-capacity baseline's attach p99 without trading away "
            "consistency.",
            mobility_model="flash_crowd",
            mobility_rate_per_ue=1.0 / 60.0,
            traffic_model="metro-iot-reattach",
            traffic_rate_scale=4.0,
            # a deliberately lean city on the heavyweight-codec config:
            # the re-attach storm is sized by population fraction, and
            # concentrating it on four single-CPF regions whose cores
            # pay asn1per (de)serialization is what makes fixed
            # capacity visibly queue for the whole storm window
            l2_regions=2,
            l1_per_l2=2,
            cpfs_per_region=1,
            config="skycore",
            # migrate re-ringed keys fast enough that a scale-out
            # relieves the hot core while the storm is still draining
            rebalance_window_s=0.02,
            orch_policy={
                "tick_s": 0.05,
                # the storm front piles up hundreds of jobs within one
                # tick, so a single loaded tick is signal, not noise —
                # react in one tick, ramp every other tick, shed the
                # extra capacity only after a sustained quiet spell
                "scale_out_queue": 8.0,
                "scale_in_queue": 0.5,
                "scale_out_ticks": 1,
                "scale_in_ticks": 6,
                "cooldown_ticks": 2,
                "max_cpfs": 4,
            },
        ),
        ScenarioSpec(
            name="ring-churn",
            description="Ring membership churn: a new CTA/region joins an "
            "existing level-2 parent mid-run (its CPFs enter the siblings' "
            "level-2 ring, so replicas re-place onto it), then the region "
            "is drained and retired — consistent-hashing monotonicity "
            "keeps the moved-key set minimal.",
            l1_per_l2=3,
            churn_events=[(0.30, "add", "fill:0"), (0.65, "remove", "fill:0")],
        ),
    ]
    return {s.name: s for s in specs}


SCENARIOS: Dict[str, ScenarioSpec] = _catalog()


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            "unknown scenario %r (have: %s)" % (name, ", ".join(scenario_names()))
        )
